package sim

import (
	"fmt"
	"math/rand"

	"ncast/internal/baseline"
	"ncast/internal/metrics"
)

// E7Config parameterises experiment E7 (§1's throughput comparison:
// network coding achieves the min-cut broadcast rate and beats the routing
// baselines under failures). All schemes are built over the same
// population size and evaluated on iid failure masks across a p sweep;
// reported is the mean goodput of working nodes, normalized so 1.0 = full
// content bandwidth.
type E7Config struct {
	N int
	K int
	D int
	// TreeFanout is the single-tree baseline's fanout.
	TreeFanout int
	// FECData is the data-shard count per d threads for the FEC baseline.
	FECData int
	Ps      []float64
	Trials  int
	// IncludeEdmonds toggles the (expensive to construct) static tree
	// packing baseline.
	IncludeEdmonds bool
	Seed           int64
}

// DefaultE7Config returns the standard throughput race.
func DefaultE7Config() E7Config {
	return E7Config{
		N:              150,
		K:              12,
		D:              3,
		TreeFanout:     3,
		FECData:        2,
		Ps:             []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2},
		Trials:         15,
		IncludeEdmonds: true,
		Seed:           7,
	}
}

// E7Row is the mean goodput of every scheme at one failure level.
type E7Row struct {
	P     float64
	Means map[string]float64
}

// E7Result holds the sweep.
type E7Result struct {
	Schemes []string
	Rows    []E7Row
}

// Table renders the result.
func (r E7Result) Table() *metrics.Table {
	header := append([]string{"p"}, r.Schemes...)
	t := metrics.NewTable("E7: mean goodput of working nodes vs failure probability", header...)
	for _, row := range r.Rows {
		cells := make([]interface{}, 0, len(header))
		cells = append(cells, row.P)
		for _, s := range r.Schemes {
			cells = append(cells, row.Means[s])
		}
		t.AddRow(cells...)
	}
	return t
}

// RunE7 executes experiment E7.
func RunE7(cfg E7Config) (E7Result, error) {
	build := rand.New(rand.NewSource(cfg.Seed))
	var schemes []baseline.Scheme

	chain, err := baseline.NewChain(cfg.N)
	if err != nil {
		return E7Result{}, err
	}
	schemes = append(schemes, chain)

	tree, err := baseline.NewTree(cfg.N, cfg.TreeFanout)
	if err != nil {
		return E7Result{}, err
	}
	schemes = append(schemes, tree)

	mt, err := baseline.NewMultiTree(cfg.N, cfg.D, build)
	if err != nil {
		return E7Result{}, err
	}
	schemes = append(schemes, mt)

	fec, err := baseline.NewFECCurtain(cfg.N, cfg.K, cfg.D, cfg.FECData, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return E7Result{}, err
	}
	schemes = append(schemes, fec)

	// The "recoding off" ablation: the same curtain topology with plain
	// store-and-forward routing (all d threads required, no coding).
	routing, err := baseline.NewFECCurtain(cfg.N, cfg.K, cfg.D, cfg.D, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return E7Result{}, err
	}
	schemes = append(schemes, routing)

	rl, err := baseline.NewRLNCCurtain(cfg.N, cfg.K, cfg.D, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return E7Result{}, err
	}
	schemes = append(schemes, rl)

	if cfg.IncludeEdmonds {
		tp, err := baseline.NewTreePacking(cfg.N, cfg.K, cfg.D, rand.New(rand.NewSource(cfg.Seed)))
		if err != nil {
			return E7Result{}, fmt.Errorf("sim: edmonds baseline: %w", err)
		}
		schemes = append(schemes, tp)
	}

	res := E7Result{}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name())
	}
	for pi, p := range cfg.Ps {
		row := E7Row{P: p, Means: make(map[string]float64, len(schemes))}
		rng := rand.New(rand.NewSource(cfg.Seed + 100 + int64(pi)))
		sums := make(map[string]float64, len(schemes))
		counts := make(map[string]int, len(schemes))
		for trial := 0; trial < cfg.Trials; trial++ {
			failed := make([]bool, cfg.N)
			for i := range failed {
				failed[i] = rng.Float64() < p
			}
			for _, s := range schemes {
				rates, err := s.Rates(failed)
				if err != nil {
					return E7Result{}, fmt.Errorf("sim: %s rates: %w", s.Name(), err)
				}
				for i, r := range rates {
					if !failed[i] {
						sums[s.Name()] += r
						counts[s.Name()]++
					}
				}
			}
			if p == 0 {
				break // deterministic mask; one trial suffices
			}
		}
		for name, sum := range sums {
			if counts[name] > 0 {
				row.Means[name] = sum / float64(counts[name])
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
