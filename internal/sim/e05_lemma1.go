package sim

import (
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/defect"
	"ncast/internal/metrics"
)

// E5Config parameterises experiment E5 (Lemma 1: a graceful leave makes
// the network distribution identical to the node never having joined).
// Two populations of networks are built over many seeds: "fresh" networks
// with n joins, and "churned" networks with n+m joins followed by m
// graceful leaves of uniformly random nodes. Lemma 1 implies the two
// populations are samples of the same distribution; we compare them with
// two-sample KS tests on two statistics: the total defect B (after iid
// tagging of failures) and the server's out-degree.
type E5Config struct {
	K int
	D int
	// N is the surviving population size; M the extra join/leave churn.
	N, M int
	// P tags failures post-hoc to give B a nondegenerate distribution.
	P float64
	// Trials is the number of networks per population.
	Trials int
	Seed   int64
}

// DefaultE5Config returns the standard Lemma 1 test.
func DefaultE5Config() E5Config {
	return E5Config{K: 8, D: 2, N: 30, M: 15, P: 0.1, Trials: 250, Seed: 5}
}

// E5Result reports the KS comparisons.
type E5Result struct {
	K, D, N, M int
	Trials     int
	// KSDefect / KSServerDeg are the two-sample KS statistics; Threshold
	// is the alpha=0.01 critical value. Lemma 1 predicts both statistics
	// below threshold.
	KSDefect    float64
	KSServerDeg float64
	Threshold   float64
}

// Invariant reports whether both statistics pass the KS test.
func (r E5Result) Invariant() bool {
	return r.KSDefect < r.Threshold && r.KSServerDeg < r.Threshold
}

// Table renders the result.
func (r E5Result) Table() *metrics.Table {
	t := metrics.NewTable("E5: Lemma 1 — graceful-leave distribution invariance (two-sample KS)",
		"statistic", "KS", "threshold(a=0.01)", "pass")
	t.AddRow("total defect B", r.KSDefect, r.Threshold, r.KSDefect < r.Threshold)
	t.AddRow("server out-degree", r.KSServerDeg, r.Threshold, r.KSServerDeg < r.Threshold)
	return t
}

// RunE5 executes experiment E5.
func RunE5(cfg E5Config) (E5Result, error) {
	build := func(churned bool, seed int64) (float64, float64, error) {
		rng := rand.New(rand.NewSource(seed))
		c, err := core.New(cfg.K, cfg.D, rng)
		if err != nil {
			return 0, 0, err
		}
		var ids []core.NodeID
		total := cfg.N
		if churned {
			total += cfg.M
		}
		for i := 0; i < total; i++ {
			ids = append(ids, c.Join())
		}
		if churned {
			// Leave M uniformly random nodes.
			perm := rng.Perm(len(ids))
			for _, i := range perm[:cfg.M] {
				if err := c.Leave(ids[i]); err != nil {
					return 0, 0, err
				}
			}
		}
		FailIID(c, cfg.P, rng)
		top := c.Snapshot()
		m, err := defect.NewMeasurer(top, cfg.D)
		if err != nil {
			return 0, 0, err
		}
		dres, err := m.Exact()
		if err != nil {
			return 0, 0, err
		}
		return float64(dres.TotalDefect()), float64(top.Graph.OutDegree(0)), nil
	}

	var freshB, churnB, freshS, churnS []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		b, s, err := build(false, cfg.Seed+int64(trial))
		if err != nil {
			return E5Result{}, err
		}
		freshB = append(freshB, b)
		freshS = append(freshS, s)
		b, s, err = build(true, cfg.Seed+100000+int64(trial))
		if err != nil {
			return E5Result{}, err
		}
		churnB = append(churnB, b)
		churnS = append(churnS, s)
	}
	return E5Result{
		K: cfg.K, D: cfg.D, N: cfg.N, M: cfg.M, Trials: cfg.Trials,
		KSDefect:    KSStatistic(freshB, churnB),
		KSServerDeg: KSStatistic(freshS, churnS),
		Threshold:   KSThreshold(cfg.Trials, cfg.Trials),
	}, nil
}
