package sim

import (
	"math/rand"

	"ncast/internal/metrics"
)

// E1Config parameterises experiment E1 (§3/§4 claim: the failure-free
// curtain gives every node edge connectivity exactly d — its d thread
// paths are edge-disjoint by construction).
type E1Config struct {
	// Configs lists the (k, d) pairs to sweep.
	Configs []KD
	// Sizes lists the population sizes N to sweep.
	Sizes []int
	// Seed drives all randomness.
	Seed int64
}

// KD is a (server threads, node degree) pair.
type KD struct {
	K int
	D int
}

// DefaultE1Config returns the standard E1 sweep.
func DefaultE1Config() E1Config {
	return E1Config{
		Configs: []KD{{16, 2}, {32, 4}, {64, 8}},
		Sizes:   []int{100, 400, 1600},
		Seed:    1,
	}
}

// E1Row is one measured configuration.
type E1Row struct {
	K, D, N      int
	FracFullConn float64
	MinConn      int
}

// E1Result holds the sweep.
type E1Result struct {
	Rows []E1Row
}

// Table renders the result.
func (r E1Result) Table() *metrics.Table {
	t := metrics.NewTable("E1: failure-free connectivity = d (§3)",
		"k", "d", "N", "frac(conn=d)", "min conn")
	for _, row := range r.Rows {
		t.AddRow(row.K, row.D, row.N, row.FracFullConn, row.MinConn)
	}
	return t
}

// RunE1 executes experiment E1.
func RunE1(cfg E1Config) (E1Result, error) {
	var res E1Result
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, kd := range cfg.Configs {
		for _, n := range cfg.Sizes {
			c, err := BuildCurtain(kd.K, kd.D, n, rng)
			if err != nil {
				return E1Result{}, err
			}
			stats := MeasureConnectivity(c.Snapshot())
			res.Rows = append(res.Rows, E1Row{
				K: kd.K, D: kd.D, N: n,
				FracFullConn: float64(stats.FullCount) / float64(stats.Working),
				MinConn:      stats.MinConn,
			})
		}
	}
	return res, nil
}
