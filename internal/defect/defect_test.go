package defect

import (
	"math"
	"math/rand"
	"testing"

	"ncast/internal/core"
)

func buildCurtain(t testing.TB, k, d, n int, seed int64) *core.Curtain {
	t.Helper()
	c, err := core.New(k, d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.Join()
	}
	return c
}

func TestNewMeasurerValidation(t *testing.T) {
	t.Parallel()
	c := buildCurtain(t, 6, 2, 5, 1)
	top := c.Snapshot()
	if _, err := NewMeasurer(top, 0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewMeasurer(top, 7); err == nil {
		t.Error("d>k accepted")
	}
	if _, err := NewMeasurer(top, 2); err != nil {
		t.Errorf("valid measurer rejected: %v", err)
	}
}

func TestEmptyCurtainHasNoDefects(t *testing.T) {
	t.Parallel()
	// With no nodes, every tuple connects straight to the server: all
	// C(k,d) tuples have connectivity d.
	c := buildCurtain(t, 6, 2, 0, 2)
	m, err := NewMeasurer(c.Snapshot(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Exact()
	if err != nil {
		t.Fatal(err)
	}
	if want := int(Binomial(6, 2)); res.Tuples != want {
		t.Fatalf("tuples = %d, want %d", res.Tuples, want)
	}
	if res.TotalDefect() != 0 || res.Defective() != 0 {
		t.Fatalf("defects on empty curtain: %+v", res)
	}
	if res.NormalizedDefect() != 0 || res.FractionDefective() != 0 {
		t.Fatal("normalized defect nonzero on empty curtain")
	}
}

func TestFailureFreeCurtainHasNoDefects(t *testing.T) {
	t.Parallel()
	// §4: without failures the curtain preserves full connectivity, so
	// B = 0 regardless of how many nodes joined.
	c := buildCurtain(t, 8, 2, 50, 3)
	m, err := NewMeasurer(c.Snapshot(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Exact()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDefect() != 0 {
		t.Fatalf("failure-free curtain has defect %d", res.TotalDefect())
	}
}

func TestSingleFailureDefectMatchesLemma6Shape(t *testing.T) {
	t.Parallel()
	// A single failed node occupying d threads at the bottom of an
	// otherwise empty curtain damages exactly the tuples that touch its
	// threads, each by the number of its threads picked: B = sum_j
	// j*C(d,j)*C(k-d,d-j) = (d^2/k)*C(k,d), the extremal case of Lemma 6.
	const k, d = 8, 2
	c, err := core.New(k, d, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	c.JoinTagged(true) // failed node right below the server
	m, err := NewMeasurer(c.Snapshot(), d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Exact()
	if err != nil {
		t.Fatal(err)
	}
	wantB := float64(d) * float64(d) / float64(k) * Binomial(k, d)
	if got := float64(res.TotalDefect()); math.Abs(got-wantB) > 1e-9 {
		t.Fatalf("B = %v, want %v (Lemma 6 extremal)", got, wantB)
	}
	// ByDeficit[1] = 2*C(d,1)... concretely: tuples picking exactly one
	// of the two blocked threads lose 1, tuples picking both lose 2.
	if res.ByDeficit[1] != d*(k-d) {
		t.Fatalf("deficit-1 tuples = %d, want %d", res.ByDeficit[1], d*(k-d))
	}
	if res.ByDeficit[2] != 1 {
		t.Fatalf("deficit-2 tuples = %d, want 1", res.ByDeficit[2])
	}
}

func TestRepairRemovesDefect(t *testing.T) {
	t.Parallel()
	const k, d = 8, 2
	c, err := core.New(k, d, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Join()
	}
	// Fail the most recent joiner: it is the bottom clip of its d
	// threads, so tuples touching those threads are guaranteed defective.
	// (A failure deep inside the curtain often causes NO hanging-tuple
	// defect — later working joins heal it — which is the paper's point.)
	id := c.Join()
	if err := c.Fail(id); err != nil {
		t.Fatal(err)
	}
	m, _ := NewMeasurer(c.Snapshot(), d)
	before, err := m.Exact()
	if err != nil {
		t.Fatal(err)
	}
	if before.TotalDefect() == 0 {
		t.Fatal("failure produced no defect")
	}
	if err := c.Repair(id); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewMeasurer(c.Snapshot(), d)
	after, err := m2.Exact()
	if err != nil {
		t.Fatal(err)
	}
	if after.TotalDefect() != 0 {
		t.Fatalf("defect %d remains after repair", after.TotalDefect())
	}
}

func TestSampleApproximatesExact(t *testing.T) {
	t.Parallel()
	const k, d = 10, 2
	c, err := core.New(k, d, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	var ids []core.NodeID
	for i := 0; i < 40; i++ {
		ids = append(ids, c.Join())
	}
	// Fail a handful of nodes to create defects.
	for _, id := range ids[:5] {
		if err := c.Fail(id); err != nil {
			t.Fatal(err)
		}
	}
	top := c.Snapshot()
	me, _ := NewMeasurer(top, d)
	exact, err := me.Exact()
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := NewMeasurer(top, d)
	sampled, err := ms.Sample(4000, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	eb, sb := exact.NormalizedDefect(), sampled.NormalizedDefect()
	if math.Abs(eb-sb) > 0.1*math.Max(eb, 0.05) {
		t.Fatalf("sampled b = %v far from exact %v", sb, eb)
	}
	if sampled.Exact {
		t.Error("sampled result flagged exact")
	}
	if !exact.Exact {
		t.Error("exact result not flagged exact")
	}
}

func TestTupleConnectivityValidation(t *testing.T) {
	t.Parallel()
	c := buildCurtain(t, 6, 2, 3, 8)
	m, _ := NewMeasurer(c.Snapshot(), 2)
	if _, err := m.TupleConnectivity([]int{0}); err == nil {
		t.Error("short tuple accepted")
	}
	if _, err := m.TupleConnectivity([]int{0, 99}); err == nil {
		t.Error("out-of-range thread accepted")
	}
	if _, err := m.Sample(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero sample size accepted")
	}
}

func TestNodeConnectivity(t *testing.T) {
	t.Parallel()
	c := buildCurtain(t, 8, 3, 25, 9)
	top := c.Snapshot()
	conn := NodeConnectivity(top, -1)
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if conn[gi] != 3 {
			t.Fatalf("node %d connectivity = %d, want 3", gi, conn[gi])
		}
	}
	// Cap works.
	capped := NodeConnectivity(top, 1)
	for gi := 1; gi < top.Graph.NumNodes(); gi++ {
		if capped[gi] != 1 {
			t.Fatalf("capped connectivity = %d, want 1", capped[gi])
		}
	}
}

func TestBinomial(t *testing.T) {
	t.Parallel()
	tests := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{24, 2, 276}, {5, 6, 0}, {5, -1, 0},
	}
	for _, tt := range tests {
		if got := Binomial(tt.n, tt.k); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Binomial(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
}

func BenchmarkExactDefect(b *testing.B) {
	c, err := core.New(12, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.JoinTagged(i%10 == 0)
	}
	top := c.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMeasurer(top, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Exact(); err != nil {
			b.Fatal(err)
		}
	}
}
