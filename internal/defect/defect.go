// Package defect measures the paper's central analytic quantity: the
// defect process B^t of §4. At any time the curtain has k hanging
// threads; a newly joining node picks a d-tuple of them, and the tuple's
// defect is d minus its edge connectivity from the server in the overlay
// restricted to working nodes. B^t is the total defect summed over all
// C(k,d) tuples, A = C(k,d), and b = B/A is the normalized defect that
// Theorem 4 bounds by (1+ε)pd and Theorem 5 keeps below the collapse
// threshold for exponentially many steps.
//
// The package offers exact enumeration (all C(k,d) tuples; used for small
// k in tests and experiment E2) and Monte-Carlo sampling (experiment E3
// and large k), both on top of a single FlowSolver with virtual-sink
// queries.
package defect

import (
	"fmt"
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/graph"
)

// Result summarises the defect of one topology snapshot.
type Result struct {
	// D is the tuple size the measurement used.
	D int
	// Tuples is the number of d-tuples evaluated.
	Tuples int
	// Exact reports whether every tuple was enumerated (Tuples == C(k,d)).
	Exact bool
	// ByDeficit[j] counts evaluated tuples with defect exactly j, for
	// j in [0, D].
	ByDeficit []int
}

// TotalDefect returns sum_j j*ByDeficit[j] — B^t when exact, an unbiased
// scaled estimate otherwise.
func (r Result) TotalDefect() int {
	total := 0
	for j, c := range r.ByDeficit {
		total += j * c
	}
	return total
}

// Defective returns the number of evaluated tuples with defect >= 1.
func (r Result) Defective() int {
	n := 0
	for j := 1; j < len(r.ByDeficit); j++ {
		n += r.ByDeficit[j]
	}
	return n
}

// NormalizedDefect returns b = B/A (estimated by the evaluated tuples).
func (r Result) NormalizedDefect() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.TotalDefect()) / float64(r.Tuples)
}

// FractionDefective returns (B_1+...+B_d)/A: the probability that a newly
// joining node picks a tuple with any connectivity loss (Lemma 2).
func (r Result) FractionDefective() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.Defective()) / float64(r.Tuples)
}

// Measurer runs tuple-connectivity queries against one topology snapshot.
// Build one per snapshot; it is not safe for concurrent use.
type Measurer struct {
	top  *core.Topology
	fs   *graph.FlowSolver
	sink int
	d    int
}

// NewMeasurer prepares defect measurement with tuple size d on a snapshot.
func NewMeasurer(top *core.Topology, d int) (*Measurer, error) {
	k := len(top.ThreadBottom)
	if k == 0 {
		return nil, fmt.Errorf("defect: snapshot has no threads")
	}
	if d < 1 || d > k {
		return nil, fmt.Errorf("defect: tuple size %d out of range [1, k=%d]", d, k)
	}
	// Effective graph (failed nodes isolated) plus one extra node used as
	// the virtual sink for every query.
	eff := top.Effective()
	sink := eff.AddNode()
	return &Measurer{top: top, fs: graph.NewFlowSolver(eff), sink: sink, d: d}, nil
}

// TupleConnectivity returns the edge connectivity from the server of the
// d-tuple of thread indices (each in [0,k)): the max flow to a virtual
// sink fed by one unit stream per chosen thread's bottom clip. Picking a
// thread that hangs directly from the server contributes a full unit;
// picking a thread whose bottom clip is failed contributes nothing.
func (m *Measurer) TupleConnectivity(tuple []int) (int, error) {
	if len(tuple) != m.d {
		return 0, fmt.Errorf("defect: tuple size %d, want %d", len(tuple), m.d)
	}
	extra := make([]graph.Edge, 0, m.d)
	for _, t := range tuple {
		if t < 0 || t >= len(m.top.ThreadBottom) {
			return 0, fmt.Errorf("defect: thread %d out of range [0,%d)", t, len(m.top.ThreadBottom))
		}
		extra = append(extra, graph.Edge{From: m.top.ThreadBottom[t], To: m.sink})
	}
	return m.fs.MaxFlow(0, m.sink, m.d, extra...), nil
}

// Exact enumerates every d-tuple of threads. Cost: C(k,d) max-flow
// queries; keep k small (the analytic experiments use k <= 24, d <= 3).
func (m *Measurer) Exact() (Result, error) {
	k := len(m.top.ThreadBottom)
	res := Result{D: m.d, Exact: true, ByDeficit: make([]int, m.d+1)}
	tuple := make([]int, m.d)
	var rec func(start, i int) error
	rec = func(start, i int) error {
		if i == m.d {
			c, err := m.TupleConnectivity(tuple)
			if err != nil {
				return err
			}
			res.ByDeficit[m.d-c]++
			res.Tuples++
			return nil
		}
		for t := start; t < k-(m.d-i-1); t++ {
			tuple[i] = t
			if err := rec(t+1, i+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0, 0); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Sample evaluates n uniformly random d-tuples (without replacement
// within a tuple, with replacement across tuples).
func (m *Measurer) Sample(n int, rng *rand.Rand) (Result, error) {
	if n <= 0 {
		return Result{}, fmt.Errorf("defect: sample size %d, want > 0", n)
	}
	k := len(m.top.ThreadBottom)
	res := Result{D: m.d, ByDeficit: make([]int, m.d+1)}
	for i := 0; i < n; i++ {
		tuple := rng.Perm(k)[:m.d]
		c, err := m.TupleConnectivity(tuple)
		if err != nil {
			return Result{}, err
		}
		res.ByDeficit[m.d-c]++
		res.Tuples++
	}
	return res, nil
}

// NodeConnectivity returns the edge connectivity from the server for each
// graph node of the snapshot, capped at limit when limit >= 0. Failed
// nodes report 0 (they are isolated in the effective graph); index 0 is
// the server itself and reports 0 by convention.
func NodeConnectivity(top *core.Topology, limit int) []int {
	fs := graph.NewFlowSolver(top.Effective())
	return fs.ConnectivityAll(0, limit)
}

// Binomial returns C(n, k) as a float64 (exact for the small arguments
// the experiments use; float to avoid overflow in reporting).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
