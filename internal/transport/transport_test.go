package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestMemNetworkRoundTrip(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	defer n.Close()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := a.Send(ctx, "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	from, msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if from != "a" || string(msg) != "hello" {
		t.Fatalf("got %q from %q", msg, from)
	}
}

func TestMemNetworkUnknownPeer(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	if err := a.Send(context.Background(), "ghost", []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestMemNetworkDuplicateAddress(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

func TestMemNetworkLoss(t *testing.T) {
	t.Parallel()
	n := NewNetwork(WithLoss(1.0), WithSeed(1))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	if err := a.Send(context.Background(), "b", []byte("x")); err != nil {
		t.Fatal(err) // loss is silent
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := b.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("lossy frame arrived: err = %v", err)
	}
}

func TestMemNetworkPartialLossStatistics(t *testing.T) {
	t.Parallel()
	n := NewNetwork(WithLoss(0.5), WithSeed(2))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	ctx := context.Background()
	const sent = 400
	for i := 0; i < sent; i++ {
		if err := a.Send(ctx, "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		c, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		_, _, err := b.Recv(c)
		cancel()
		if err != nil {
			break
		}
		got++
	}
	if got < sent/4 || got > 3*sent/4 {
		t.Fatalf("received %d of %d at 50%% loss", got, sent)
	}
}

func TestMemNetworkLatency(t *testing.T) {
	t.Parallel()
	n := NewNetwork(WithLatency(30 * time.Millisecond))
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	ctx := context.Background()
	start := time.Now()
	if err := a.Send(ctx, "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delivery after %v, want >= latency", elapsed)
	}
}

func TestMemEndpointClose(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close: %v", err)
	}
	// Address is reusable after close.
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatalf("address not released: %v", err)
	}
}

func TestNetworkCloseClosesEndpoints(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	a, _ := n.Endpoint("a")
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after network close: %v", err)
	}
	if _, err := n.Endpoint("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Endpoint after close: %v", err)
	}
}

func TestSendToClosedEndpointDropsFrame(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	// Close b's receive side without unregistering (simulates crash
	// before repair): close via the network-held reference.
	n.mu.Lock()
	n.endpoints["b"].closeLocked()
	n.mu.Unlock()
	if err := a.Send(context.Background(), "b", []byte("x")); err != nil {
		t.Fatalf("send to crashed endpoint: %v", err)
	}
	_ = b
}

func TestCrashThenRejoinSurvivesOldClose(t *testing.T) {
	t.Parallel()
	n := NewNetwork()
	defer n.Close()
	old, _ := n.Endpoint("node")
	b, _ := n.Endpoint("b")

	// Crash: the network force-closes and unregisters the endpoint, but
	// the protocol layer still holds the old handle (its Run loop winds
	// down asynchronously and calls Close later).
	if !n.CloseEndpoint("node") {
		t.Fatal("CloseEndpoint found nothing")
	}
	// Rejoin re-registers the same address.
	fresh, err := n.Endpoint("node")
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	// The straggling close of the crashed endpoint must not evict the
	// successor from the fabric.
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(context.Background(), "node", []byte("post-rejoin")); err != nil {
		t.Fatalf("send to rejoined node: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, msg, err := fresh.Recv(ctx); err != nil || string(msg) != "post-rejoin" {
		t.Fatalf("rejoined endpoint unreachable: %q, %v", msg, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	msgs := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 100000)}
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d vs %d bytes", len(got), len(want))
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// A forged oversized header must be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("forged oversized header accepted")
	}
}

func TestConnOverPipe(t *testing.T) {
	t.Parallel()
	p1, p2 := net.Pipe()
	c1, c2 := NewConn(p1), NewConn(p2)
	defer c1.Close()
	defer c2.Close()
	done := make(chan error, 1)
	go func() {
		done <- c1.Send(context.Background(), []byte("ping"))
	}()
	msg, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "ping" {
		t.Fatalf("got %q", msg)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnOverTCP(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		msg []byte
		err error
	}
	res := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			res <- result{err: err}
			return
		}
		c := NewConn(conn)
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			res <- result{err: err}
			return
		}
		if err := c.Send(context.Background(), append([]byte("echo:"), msg...)); err != nil {
			res <- result{err: err}
			return
		}
		res <- result{msg: msg}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(conn)
	defer c.Close()
	if err := c.Send(context.Background(), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:payload" {
		t.Fatalf("reply = %q", reply)
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
}
