//go:build linux && arm64

package transport

// ABI-frozen syscall numbers for linux/arm64.
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
