package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ncast/internal/obs"
)

// This file implements the datagram data plane: a message-oriented UDP
// endpoint whose hot path batches syscalls. Outbound frames are coalesced
// by a pacing queue and flushed with sendmmsg (one syscall for up to
// BatchSize datagrams); inbound datagrams are drained with recvmmsg into
// per-slot buffers that are handed to the receiver without copying. On
// platforms without the mmsg syscalls a portable shim degrades to one
// syscall per datagram with identical semantics (see mmsg_portable.go).
//
// Reliability semantics are UDP's: a frame that cannot be queued, sent, or
// delivered is dropped silently (and counted), exactly like loss on a
// congested link. RLNC makes that harmless by construction — no specific
// packet is ever required, only enough innovative ones — which is the
// whole reason the data plane can leave TCP.
//
// Like TCPEndpoint, every datagram carries a [4B len][sender addr] prefix
// so receivers learn the sender's canonical (listening) address: the
// overlay addresses peers by that address, and relying on the packet
// source address would break behind wildcard binds and rewriting NATs.

// ErrFrameTooLarge is returned by UDPEndpoint.Send for frames that cannot
// fit in one datagram under the configured MTU. It fails fast instead of
// fragmenting or silently truncating: a too-big coded frame is a
// configuration error (see ncast.MaxPacketSize), not a transient fault.
var ErrFrameTooLarge = errors.New("transport: frame exceeds datagram MTU")

// UDPConfig parameterises a UDPEndpoint. The zero value selects the
// defaults noted on each field.
type UDPConfig struct {
	// MTU bounds the payload bytes of one datagram, sender prefix
	// included (default 1452: Ethernet 1500 minus IP/UDP headers with
	// margin for IPv6).
	MTU int
	// BatchSize is the maximum datagrams per sendmmsg/recvmmsg call
	// (default 32).
	BatchSize int
	// Pacing is the send-side coalescing window: after the first frame of
	// a batch arrives, the sender waits up to this long for more frames
	// before flushing, trading bounded latency for fewer syscalls.
	// 0 (the default) flushes whatever is immediately available.
	Pacing time.Duration
	// QueueLen is the send and receive queue capacity in frames (default
	// 1024). A full queue drops, like a congested link.
	QueueLen int
	// Advertise overrides the address stamped into outgoing frames (and
	// returned by Addr). Empty uses the bind address. ListenSamePort sets
	// it to the TCP address so both planes share one identity.
	Advertise string
}

func (c UDPConfig) withDefaults() UDPConfig {
	if c.MTU <= 0 {
		c.MTU = DefaultMTU
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	return c
}

// DefaultMTU is the default datagram payload budget.
const DefaultMTU = 1452

// outDatagram is one queued outbound datagram: the pooled wire buffer
// (sender prefix + payload), the payload length for metrics, and the
// resolved destination.
type outDatagram struct {
	buf  *[]byte
	b    []byte
	plen int
	dest *udpDest
}

// udpDest caches one peer's resolved address: the net form for the
// portable path and the raw sockaddr bytes for the mmsg path.
type udpDest struct {
	ua *net.UDPAddr
	sa []byte // raw sockaddr, linux mmsg builds only (nil elsewhere)
}

// udpBatchIO abstracts vectorized datagram I/O over one UDP socket.
// sendBatch transmits a prefix of batch and returns how many datagrams
// were accepted; when it returns (n, err) with err != nil, batch[n] is the
// datagram that failed. recvBatch blocks for at least one datagram, fills
// bufs[i][:lens[i]], and returns the count. destSockaddr pre-resolves a
// peer address into whatever raw form the implementation sends with (nil
// where the implementation dials through the net package).
type udpBatchIO interface {
	sendBatch(batch []outDatagram) (int, error)
	recvBatch(bufs [][]byte, lens []int) (int, error)
	destSockaddr(ua *net.UDPAddr) ([]byte, error)
}

// UDPEndpoint implements Endpoint over a single UDP socket with batched
// syscalls on both directions of the hot path.
type UDPEndpoint struct {
	conn *net.UDPConn
	addr string
	cfg  UDPConfig
	bio  udpBatchIO

	sendq chan outDatagram
	recvq chan memFrame
	done  chan struct{}

	mu     sync.Mutex
	dests  map[string]*udpDest
	closed bool

	wg      sync.WaitGroup
	metrics atomic.Pointer[obs.TransportMetrics]

	bufPool sync.Pool
}

var (
	_ Endpoint       = (*UDPEndpoint)(nil)
	_ Instrumentable = (*UDPEndpoint)(nil)
)

// ListenUDP creates a datagram endpoint bound to addr (e.g.
// "127.0.0.1:0").
func ListenUDP(addr string, cfg UDPConfig) (*UDPEndpoint, error) {
	cfg = cfg.withDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve udp %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	bio, err := newBatchIO(conn, cfg.BatchSize)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: batch io: %w", err)
	}
	e := &UDPEndpoint{
		conn:  conn,
		addr:  cfg.Advertise,
		cfg:   cfg,
		bio:   bio,
		sendq: make(chan outDatagram, cfg.QueueLen),
		recvq: make(chan memFrame, cfg.QueueLen),
		done:  make(chan struct{}),
		dests: make(map[string]*udpDest),
	}
	if e.addr == "" {
		e.addr = conn.LocalAddr().String()
	}
	e.bufPool.New = func() any {
		b := make([]byte, 0, cfg.MTU)
		return &b
	}
	e.wg.Add(2)
	go e.sendLoop()
	go e.recvLoop()
	return e, nil
}

// Addr returns the endpoint's advertised address.
func (e *UDPEndpoint) Addr() string { return e.addr }

// SetMetrics attaches obs counters to the endpoint.
func (e *UDPEndpoint) SetMetrics(m *obs.TransportMetrics) { e.metrics.Store(m) }

// dest resolves and caches the peer's address.
func (e *UDPEndpoint) dest(to string) (*udpDest, error) {
	e.mu.Lock()
	d, ok := e.dests[to]
	e.mu.Unlock()
	if ok {
		return d, nil
	}
	ua, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	d = &udpDest{ua: ua}
	if d.sa, err = e.bio.destSockaddr(ua); err != nil {
		return nil, fmt.Errorf("transport: sockaddr %q: %w", to, err)
	}
	e.mu.Lock()
	e.dests[to] = d
	e.mu.Unlock()
	return d, nil
}

// Send queues one frame for batched transmission. It copies msg (the
// caller may reuse the buffer immediately, like the other transports),
// never blocks beyond the context, and treats a full pacing queue as a
// congested link: the frame is dropped, counted, and Send reports
// success.
func (e *UDPEndpoint) Send(ctx context.Context, to string, msg []byte) error {
	m := e.metrics.Load()
	if err := ctx.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if 4+len(e.addr)+len(msg) > e.cfg.MTU {
		m.Dropped()
		return fmt.Errorf("%w: %d bytes + sender prefix > mtu %d", ErrFrameTooLarge, len(msg), e.cfg.MTU)
	}
	d, err := e.dest(to)
	if err != nil {
		m.Dropped()
		return err
	}
	buf := e.bufPool.Get().(*[]byte)
	wire := appendSender((*buf)[:0], e.addr, msg)
	*buf = wire
	select {
	case e.sendq <- outDatagram{buf: buf, b: wire, plen: len(msg), dest: d}:
		return nil
	case <-e.done:
		e.bufPool.Put(buf)
		m.Dropped()
		return nil // endpoint closing: frame lost, like any datagram
	case <-ctx.Done():
		e.bufPool.Put(buf)
		m.Dropped()
		return ctx.Err()
	default:
		// Full queue: drop rather than block the producer — the exact
		// behavior of a congested link, which RLNC absorbs by design.
		e.bufPool.Put(buf)
		m.Dropped()
		return nil
	}
}

// appendSender appends the [4B len][sender addr] prefix and the payload.
func appendSender(buf []byte, from string, msg []byte) []byte {
	buf = append(buf, byte(len(from)>>24), byte(len(from)>>16), byte(len(from)>>8), byte(len(from)))
	buf = append(buf, from...)
	return append(buf, msg...)
}

// sendLoop drains the pacing queue in batches: it blocks for the first
// frame, greedily takes whatever else is immediately queued, optionally
// lingers up to Pacing for stragglers, and flushes the batch with one
// vectorized syscall.
func (e *UDPEndpoint) sendLoop() {
	defer e.wg.Done()
	batch := make([]outDatagram, 0, e.cfg.BatchSize)
	for {
		select {
		case d := <-e.sendq:
			batch = append(batch[:0], d)
		case <-e.done:
			return
		}
	drain:
		for len(batch) < e.cfg.BatchSize {
			select {
			case d := <-e.sendq:
				batch = append(batch, d)
			default:
				break drain
			}
		}
		if e.cfg.Pacing > 0 && len(batch) < e.cfg.BatchSize {
			timer := time.NewTimer(e.cfg.Pacing)
		linger:
			for len(batch) < e.cfg.BatchSize {
				select {
				case d := <-e.sendq:
					batch = append(batch, d)
				case <-timer.C:
					break linger
				case <-e.done:
					timer.Stop()
					e.transmit(batch)
					return
				}
			}
			timer.Stop()
		}
		e.transmit(batch)
	}
}

// transmit flushes one gathered batch, skipping over per-datagram errors
// (an unreachable peer must not sink the rest of the batch) and recycling
// the pooled buffers.
func (e *UDPEndpoint) transmit(batch []outDatagram) {
	m := e.metrics.Load()
	m.ObserveSendBatch(len(batch))
	start := m.Start()
	rest := batch
	for len(rest) > 0 {
		n, err := e.bio.sendBatch(rest)
		for i := 0; i < n; i++ {
			m.Sent(rest[i].plen)
		}
		if err != nil {
			if n < len(rest) {
				// rest[n] failed (EMSGSIZE, ECONNREFUSED via ICMP, ...):
				// drop it and keep going with the remainder.
				m.Dropped()
				n++
			}
			if n == 0 {
				break
			}
		}
		if n == 0 {
			break
		}
		rest = rest[n:]
	}
	for range rest {
		m.Dropped()
	}
	m.ObserveSend(start)
	for i := range batch {
		e.bufPool.Put(batch[i].buf)
	}
}

// recvLoop drains the socket with batched reads. Each datagram lands in
// its own buffer which is handed to the protocol layer as-is — ownership
// moves, no copy — and the slot is re-armed with a fresh buffer.
func (e *UDPEndpoint) recvLoop() {
	defer e.wg.Done()
	bufs := make([][]byte, e.cfg.BatchSize)
	lens := make([]int, e.cfg.BatchSize)
	for {
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = make([]byte, e.cfg.MTU)
			}
		}
		n, err := e.bio.recvBatch(bufs, lens)
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient (e.g. ICMP-induced) — keep reading
		}
		m := e.metrics.Load()
		m.ObserveRecvBatch(n)
		for i := 0; i < n; i++ {
			frame := bufs[i][:lens[i]]
			from, payload, err := splitSender(frame)
			if err != nil {
				m.Dropped() // malformed datagram: ignore, slot is reused
				continue
			}
			bufs[i] = nil // ownership moved to the receiver
			select {
			case e.recvq <- memFrame{from: from, msg: payload}:
				m.Received(len(payload))
			case <-e.done:
				return
			default:
				m.Dropped() // receiver not draining: congested-link drop
			}
		}
	}
}

// Recv implements Endpoint.
func (e *UDPEndpoint) Recv(ctx context.Context) (string, []byte, error) {
	select {
	case f := <-e.recvq:
		return f.from, f.msg, nil
	case <-e.done:
		return "", nil, ErrClosed
	case <-ctx.Done():
		return "", nil, ctx.Err()
	}
}

// Close implements Endpoint: it stops both loops and closes the socket.
func (e *UDPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}
