package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTCPEndpointRoundTrip(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	if err := a.Send(ctx, b.Addr(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	from, msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if from != a.Addr() || string(msg) != "over tcp" {
		t.Fatalf("got %q from %q", msg, from)
	}
	// Reply using the learned sender address.
	if err := b.Send(ctx, from, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	_, msg, err = a.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "ack" {
		t.Fatalf("reply = %q", msg)
	}
}

func TestTCPEndpointConnReuseConcurrent(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.Send(ctx, b.Addr(), []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[byte]bool, n)
	for i := 0; i < n; i++ {
		_, msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[msg[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("received %d distinct frames, want %d", len(seen), n)
	}
}

func TestTCPEndpointSendAfterClose(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "127.0.0.1:1", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := a.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close: %v", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPEndpointDialFailure(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := a.Send(ctx, "127.0.0.1:1", []byte("x")); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}
