package transport

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTCPEndpointRoundTrip(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	if err := a.Send(ctx, b.Addr(), []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	from, msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if from != a.Addr() || string(msg) != "over tcp" {
		t.Fatalf("got %q from %q", msg, from)
	}
	// Reply using the learned sender address.
	if err := b.Send(ctx, from, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	_, msg, err = a.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "ack" {
		t.Fatalf("reply = %q", msg)
	}
}

func TestTCPEndpointConnReuseConcurrent(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ctx := context.Background()
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := a.Send(ctx, b.Addr(), []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[byte]bool, n)
	for i := 0; i < n; i++ {
		_, msg, err := b.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[msg[0]] = true
	}
	if len(seen) != n {
		t.Fatalf("received %d distinct frames, want %d", len(seen), n)
	}
}

func TestTCPEndpointSendAfterClose(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(context.Background(), "127.0.0.1:1", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, err := a.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close: %v", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSenderHostileLength(t *testing.T) {
	t.Parallel()
	// A length prefix near MaxUint32 must be rejected, not sliced: with a
	// signed int conversion the value goes negative on 32-bit platforms
	// and bypasses the bounds check.
	hostile := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 'x', 'y'},
		{0x80, 0x00, 0x00, 0x00, 'p'},
		{0x00, 0x00, 0x00, 0x05, 'a'}, // length > remaining
		{0x01},                        // short frame
		{},
	}
	for _, frame := range hostile {
		if _, _, err := splitSender(frame); err == nil {
			t.Fatalf("hostile frame %x accepted", frame)
		}
	}
	// Round trip through the real encoder still works, including an empty
	// payload (len == remaining exactly).
	from, payload, err := splitSender(prependSender("1.2.3.4:5", nil))
	if err != nil || from != "1.2.3.4:5" || len(payload) != 0 {
		t.Fatalf("round trip: %q, %q, %v", from, payload, err)
	}
}

func FuzzSplitSender(f *testing.F) {
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add(prependSender("127.0.0.1:9", []byte("payload")))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, frame []byte) {
		from, payload, err := splitSender(frame) // must never panic
		if err != nil {
			return
		}
		// Whatever parses must re-encode to the identical frame.
		redone := prependSender(from, payload)
		if string(redone) != string(frame) {
			t.Fatalf("not canonical: %x -> (%q,%x) -> %x", frame, from, payload, redone)
		}
	})
}

func TestTCPEndpointRedialAfterSendErrorConcurrent(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A hostile peer that accepts and immediately slams each connection:
	// writes eventually fail, which must invalidate the cached conn so
	// concurrent senders trigger a redial instead of reusing a corpse.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			conn.Close()
		}
	}()

	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for accepts.Load() < 3 && time.Now().Before(deadline) {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Errors are expected (the peer kills every conn); the
				// invariant under test is redial, not delivery.
				sctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
				defer cancel()
				_ = a.Send(sctx, ln.Addr().String(), []byte("probe"))
			}()
		}
		wg.Wait()
		time.Sleep(10 * time.Millisecond)
	}
	if got := accepts.Load(); got < 3 {
		t.Fatalf("peer saw %d connections; send errors did not trigger redial", got)
	}
	// The endpoint survives the abuse and still serves healthy peers.
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Send(ctx, b.Addr(), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if _, msg, err := b.Recv(rctx); err != nil || string(msg) != "alive" {
		t.Fatalf("healthy peer after redials: %q, %v", msg, err)
	}
}

func TestTCPEndpointDialFailure(t *testing.T) {
	t.Parallel()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := a.Send(ctx, "127.0.0.1:1", []byte("x")); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}
