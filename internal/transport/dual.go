package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Dual splits one logical endpoint across two transports: a reliable
// control plane (TCP: hello/goodbye/repair/stats/leases) and a lossy
// datagram data plane (UDP: coded frames, keepalives). The classifier
// decides per outgoing frame; both planes' inbound traffic merges into one
// Recv stream, so the protocol layer is oblivious to the split.
//
// The classifier lives here as a plain func because transport must not
// import protocol (protocol imports transport); protocol exports
// DataPlaneFrame for callers to pass in.
//
// Identity: Addr() is the control endpoint's address, and ListenSamePort
// binds the data socket to the same host:port and stamps that address into
// its sender prefix, so a peer is one address on both planes — no mapping
// handshake, no second address book.
type Dual struct {
	ctrl   Endpoint
	data   Endpoint
	isData func([]byte) bool

	recvq chan memFrame
	done  chan struct{}

	closeOnce sync.Once
	closeErr  error
	wg        sync.WaitGroup
}

var _ Endpoint = (*Dual)(nil)

// NewDual combines a control and a data endpoint. Frames for which isData
// returns true go out on data; everything else on ctrl. Dual owns both
// endpoints: Close closes them.
func NewDual(ctrl, data Endpoint, isData func([]byte) bool) *Dual {
	d := &Dual{
		ctrl:   ctrl,
		data:   data,
		isData: isData,
		recvq:  make(chan memFrame, 256),
		done:   make(chan struct{}),
	}
	d.wg.Add(2)
	go d.pump(ctrl)
	go d.pump(data)
	return d
}

// Control and Data expose the underlying planes so callers can instrument
// each with its own metrics kind ("tcp" vs "udp") or wrap the data plane
// in a Faulty for chaos runs. Dual deliberately does not implement
// Instrumentable: one bundle for two planes would defeat the split.
func (d *Dual) Control() Endpoint { return d.ctrl }
func (d *Dual) Data() Endpoint    { return d.data }

// Addr returns the shared (control) address.
func (d *Dual) Addr() string { return d.ctrl.Addr() }

// pump forwards one plane's inbound frames into the merged stream. It
// exits when the inner endpoint reports closure — no context juggling
// needed, Close closes both inners.
func (d *Dual) pump(ep Endpoint) {
	defer d.wg.Done()
	ctx := context.Background()
	for {
		from, msg, err := ep.Recv(ctx)
		if err != nil {
			return
		}
		select {
		case d.recvq <- memFrame{from: from, msg: msg}:
		case <-d.done:
			return
		}
	}
}

// Send routes the frame to the plane the classifier picks.
func (d *Dual) Send(ctx context.Context, to string, msg []byte) error {
	if d.isData(msg) {
		return d.data.Send(ctx, to, msg)
	}
	return d.ctrl.Send(ctx, to, msg)
}

// Recv returns the next frame from either plane.
func (d *Dual) Recv(ctx context.Context) (string, []byte, error) {
	select {
	case f := <-d.recvq:
		return f.from, f.msg, nil
	case <-d.done:
		return "", nil, ErrClosed
	case <-ctx.Done():
		return "", nil, ctx.Err()
	}
}

// Close closes both planes and waits for the pumps to drain out.
func (d *Dual) Close() error {
	d.closeOnce.Do(func() {
		errCtrl := d.ctrl.Close()
		errData := d.data.Close()
		close(d.done)
		d.wg.Wait()
		d.closeErr = errors.Join(errCtrl, errData)
	})
	return d.closeErr
}

// ListenSamePort binds a TCP listener and a UDP socket on the same
// host:port so the two planes share one address. With an explicit port the
// pairing either works or fails outright; with an ephemeral port (":0")
// the kernel-chosen TCP port may already be taken for UDP by another
// process, so the pairing retries with fresh ports a few times. The UDP
// endpoint advertises the TCP address.
func ListenSamePort(addr string, cfg UDPConfig) (*TCPEndpoint, *UDPEndpoint, error) {
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: listen same port %q: %w", addr, err)
	}
	ephemeral := port == "0" || port == ""
	var lastErr error
	for attempt := 0; attempt < 16; attempt++ {
		tcp, err := ListenTCP(addr)
		if err != nil {
			return nil, nil, err
		}
		ucfg := cfg
		ucfg.Advertise = tcp.Addr()
		udp, err := ListenUDP(tcp.Addr(), ucfg)
		if err == nil {
			return tcp, udp, nil
		}
		tcp.Close()
		lastErr = err
		if !ephemeral {
			break // a fixed port will not change on retry
		}
	}
	return nil, nil, fmt.Errorf("transport: no port with both tcp and udp free: %w", lastErr)
}
