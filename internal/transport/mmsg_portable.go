//go:build !linux || (!amd64 && !arm64)

package transport

import "net"

// Portable fallback for platforms without the vectorized mmsg syscalls:
// one WriteToUDP/ReadFromUDP per datagram through the net package, with
// semantics identical to mmsg_linux.go (sendBatch may return a partial
// count with the failing datagram at index n; recvBatch blocks for one
// datagram). Batching still amortizes channel wakeups on the send side
// even though each datagram costs its own syscall here.

type loopIO struct {
	conn *net.UDPConn
}

func newBatchIO(conn *net.UDPConn, _ int) (udpBatchIO, error) {
	return &loopIO{conn: conn}, nil
}

// destSockaddr is nil on the portable path: sends go through the net
// package, which resolves the *net.UDPAddr itself.
func (io *loopIO) destSockaddr(*net.UDPAddr) ([]byte, error) { return nil, nil }

func (io *loopIO) sendBatch(batch []outDatagram) (int, error) {
	for i := range batch {
		if _, err := io.conn.WriteToUDP(batch[i].b, batch[i].dest.ua); err != nil {
			return i, err
		}
	}
	return len(batch), nil
}

func (io *loopIO) recvBatch(bufs [][]byte, lens []int) (int, error) {
	n, _, err := io.conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	lens[0] = n
	return 1, nil
}
