package transport

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestPeerKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tracker", "tracker"},
		{"host:9000", "host:9000"},
		{"swarm0!n42", "swarm0"},
		{"swarm0!n42!deep", "swarm0"},
		{"!leading", ""},
		{"", ""},
	}
	for _, c := range cases {
		if got := PeerKey(c.in); got != c.want {
			t.Errorf("PeerKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMuxPrefixRouting(t *testing.T) {
	ctx := context.Background()
	n := NewNetwork()
	defer n.Close()
	mux, err := n.MuxEndpoint("swarm0", 0)
	if err != nil {
		t.Fatalf("MuxEndpoint: %v", err)
	}
	plain, err := n.Endpoint("tracker")
	if err != nil {
		t.Fatalf("Endpoint: %v", err)
	}

	// Sub-address routes to the mux endpoint; RecvTo reports the full
	// destination so the receiver can demultiplex.
	if err := plain.Send(ctx, "swarm0!n42", []byte("hi")); err != nil {
		t.Fatalf("send to sub-address: %v", err)
	}
	from, to, msg, err := mux.RecvTo(ctx)
	if err != nil {
		t.Fatalf("RecvTo: %v", err)
	}
	if from != "tracker" || to != "swarm0!n42" || string(msg) != "hi" {
		t.Fatalf("RecvTo = (%q, %q, %q), want (tracker, swarm0!n42, hi)", from, to, msg)
	}

	// The base address still works, and RecvTo reports it.
	if err := plain.Send(ctx, "swarm0", []byte("base")); err != nil {
		t.Fatalf("send to base: %v", err)
	}
	if _, to, _, err = mux.RecvTo(ctx); err != nil || to != "swarm0" {
		t.Fatalf("RecvTo base = (%q, %v), want (swarm0, nil)", to, err)
	}
}

func TestMuxSubAddressNotRoutedToPlainEndpoint(t *testing.T) {
	ctx := context.Background()
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Endpoint("plain"); err != nil {
		t.Fatal(err)
	}
	src, err := n.Endpoint("src")
	if err != nil {
		t.Fatal(err)
	}
	err = src.Send(ctx, "plain!n1", []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "unknown peer") {
		t.Fatalf("send to sub-address of plain endpoint: err = %v, want unknown peer", err)
	}
}

func TestMuxSendAs(t *testing.T) {
	ctx := context.Background()
	n := NewNetwork()
	defer n.Close()
	mux, err := n.MuxEndpoint("swarm0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tracker, err := n.Endpoint("tracker")
	if err != nil {
		t.Fatal(err)
	}

	// A virtual node originates a frame; the receiver sees the virtual
	// address as the sender and can reply to it.
	if err := mux.SendAs(ctx, "swarm0!n7", "tracker", []byte("hello")); err != nil {
		t.Fatalf("SendAs: %v", err)
	}
	from, msg, err := tracker.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if from != "swarm0!n7" || string(msg) != "hello" {
		t.Fatalf("Recv = (%q, %q), want (swarm0!n7, hello)", from, msg)
	}
	if err := tracker.Send(ctx, from, []byte("welcome")); err != nil {
		t.Fatalf("reply to virtual sender: %v", err)
	}
	_, to, msg, err := mux.RecvTo(ctx)
	if err != nil || to != "swarm0!n7" || string(msg) != "welcome" {
		t.Fatalf("reply RecvTo = (%q, %q, %v), want (swarm0!n7, welcome, nil)", to, msg, err)
	}

	// SendAs refuses sender addresses that don't route back here.
	if err := mux.SendAs(ctx, "other!n7", "tracker", []byte("spoof")); err == nil {
		t.Fatal("SendAs with foreign sender succeeded, want error")
	}
	if err := mux.SendAs(ctx, "tracker", "tracker", []byte("spoof")); err == nil {
		t.Fatal("SendAs impersonating another endpoint succeeded, want error")
	}
}

func TestMuxReservedSeparatorRejected(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Endpoint("bad!addr"); err == nil {
		t.Fatal("Endpoint accepted address with reserved separator")
	}
	if _, err := n.MuxEndpoint("bad!addr", 0); err == nil {
		t.Fatal("MuxEndpoint accepted address with reserved separator")
	}
}

func TestMuxLossAndLatencyApply(t *testing.T) {
	ctx := context.Background()
	n := NewNetwork(WithLoss(1.0))
	defer n.Close()
	mux, err := n.MuxEndpoint("swarm0", 0)
	if err != nil {
		t.Fatal(err)
	}
	src, err := n.Endpoint("src")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Send(ctx, "swarm0!n1", []byte("x")); err != nil {
		t.Fatalf("lossy send: %v", err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, _, _, err := mux.RecvTo(shortCtx); err == nil {
		t.Fatal("frame delivered despite 100% loss")
	}
}

func TestMuxEndpointSatisfiesEndpoint(t *testing.T) {
	ctx := context.Background()
	n := NewNetwork()
	defer n.Close()
	mux, err := n.MuxEndpoint("swarm0", 0)
	if err != nil {
		t.Fatal(err)
	}
	var ep Endpoint = mux
	if ep.Addr() != "swarm0" {
		t.Fatalf("Addr = %q", ep.Addr())
	}
	peer, err := n.Endpoint("peer")
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(ctx, "peer", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if from, msg, err := peer.Recv(ctx); err != nil || from != "swarm0" || string(msg) != "plain" {
		t.Fatalf("Recv = (%q, %q, %v)", from, msg, err)
	}
}
