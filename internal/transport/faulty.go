package transport

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ncast/internal/obs"
)

// FaultConfig parameterises a Faulty endpoint wrapper. All probabilities
// are in [0,1] and evaluated independently per frame with the seeded rng,
// so a failure scenario replays deterministically.
type FaultConfig struct {
	// SendLoss drops each outbound frame with this probability.
	SendLoss float64
	// RecvLoss drops each inbound frame with this probability.
	RecvLoss float64
	// DupProb re-sends an outbound frame once with this probability
	// (duplicate delivery, as after a spurious retransmit).
	DupProb float64
	// SendDelay and RecvDelay add a fixed extra delay per direction.
	SendDelay time.Duration
	RecvDelay time.Duration
	// Seed drives the loss/duplication coins.
	Seed int64
}

// FaultStats counts the faults a Faulty wrapper has injected.
type FaultStats struct {
	SendDropped uint64
	RecvDropped uint64
	Duplicated  uint64
	Partitioned uint64
}

// Faulty wraps an Endpoint with seeded fault injection: probabilistic
// drops and duplication, fixed extra delays, and directional partitions.
// It exists so churn and crash scenarios can be scripted against any
// transport (in-memory or TCP) without rebuilding the fabric. The zero
// probabilities make it a transparent pass-through.
type Faulty struct {
	inner Endpoint

	mu          sync.Mutex
	rng         *rand.Rand
	cfg         FaultConfig
	blockedSend map[string]bool
	blockedRecv map[string]bool

	sendDropped atomic.Uint64
	recvDropped atomic.Uint64
	duplicated  atomic.Uint64
	partitioned atomic.Uint64

	// metrics mirrors the bundle forwarded to the inner endpoint so the
	// faults injected HERE (which the inner endpoint never sees) still
	// surface as ncast_transport_*_dropped.
	metrics atomic.Pointer[obs.TransportMetrics]
}

var (
	_ Endpoint       = (*Faulty)(nil)
	_ Instrumentable = (*Faulty)(nil)
)

// NewFaulty wraps inner with the given fault plan.
func NewFaulty(inner Endpoint, cfg FaultConfig) *Faulty {
	return &Faulty{
		inner:       inner,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		cfg:         cfg,
		blockedSend: make(map[string]bool),
		blockedRecv: make(map[string]bool),
	}
}

// Addr returns the wrapped endpoint's address.
func (f *Faulty) Addr() string { return f.inner.Addr() }

// SetMetrics attaches the bundle locally (for injected faults) and
// forwards it to the wrapped endpoint (for real traffic). Without the
// local copy, injected drops never reach obs: the inner endpoint is never
// called for a dropped frame, so nothing would increment the drop counter.
func (f *Faulty) SetMetrics(m *obs.TransportMetrics) {
	f.metrics.Store(m)
	Instrument(f.inner, m)
}

// Close closes the wrapped endpoint.
func (f *Faulty) Close() error { return f.inner.Close() }

// Stats returns the fault counters so tests can assert injection really
// happened (a fault plan that never fires proves nothing).
func (f *Faulty) Stats() FaultStats {
	return FaultStats{
		SendDropped: f.sendDropped.Load(),
		RecvDropped: f.recvDropped.Load(),
		Duplicated:  f.duplicated.Load(),
		Partitioned: f.partitioned.Load(),
	}
}

// Partition blocks both directions to/from the named peers.
func (f *Faulty) Partition(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range peers {
		f.blockedSend[p] = true
		f.blockedRecv[p] = true
	}
}

// PartitionOutbound blocks only frames sent to the named peers (an
// asymmetric failure: we hear them, they do not hear us).
func (f *Faulty) PartitionOutbound(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range peers {
		f.blockedSend[p] = true
	}
}

// PartitionInbound blocks only frames received from the named peers.
func (f *Faulty) PartitionInbound(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, p := range peers {
		f.blockedRecv[p] = true
	}
}

// Heal unblocks both directions for the named peers; with no arguments it
// heals every partition.
func (f *Faulty) Heal(peers ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(peers) == 0 {
		f.blockedSend = make(map[string]bool)
		f.blockedRecv = make(map[string]bool)
		return
	}
	for _, p := range peers {
		delete(f.blockedSend, p)
		delete(f.blockedRecv, p)
	}
}

// coin flips the rng under the mutex (rand.Rand is not goroutine-safe).
func (f *Faulty) coin(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

// Send injects outbound faults, then delegates. Dropped and partitioned
// frames report success, exactly like loss on a real link.
func (f *Faulty) Send(ctx context.Context, to string, msg []byte) error {
	f.mu.Lock()
	blocked := f.blockedSend[to]
	f.mu.Unlock()
	if blocked {
		f.partitioned.Add(1)
		f.metrics.Load().Dropped()
		return nil
	}
	if f.coin(f.cfg.SendLoss) {
		f.sendDropped.Add(1)
		f.metrics.Load().Dropped()
		return nil
	}
	if f.cfg.SendDelay > 0 {
		if err := sleepCtx(ctx, f.cfg.SendDelay); err != nil {
			return err
		}
	}
	if err := f.inner.Send(ctx, to, msg); err != nil {
		return err
	}
	if f.coin(f.cfg.DupProb) {
		f.duplicated.Add(1)
		return f.inner.Send(ctx, to, msg)
	}
	return nil
}

// Recv injects inbound faults: frames from partitioned peers and coin
// losses are consumed silently, and the next surviving frame is returned.
func (f *Faulty) Recv(ctx context.Context) (string, []byte, error) {
	for {
		from, msg, err := f.inner.Recv(ctx)
		if err != nil {
			return "", nil, err
		}
		f.mu.Lock()
		blocked := f.blockedRecv[from]
		f.mu.Unlock()
		if blocked {
			f.partitioned.Add(1)
			f.metrics.Load().Dropped()
			continue
		}
		if f.coin(f.cfg.RecvLoss) {
			f.recvDropped.Add(1)
			f.metrics.Load().Dropped()
			continue
		}
		if f.cfg.RecvDelay > 0 {
			if err := sleepCtx(ctx, f.cfg.RecvDelay); err != nil {
				// The frame was consumed from the inner endpoint but never
				// delivered to the caller: lost in flight on a dying link.
				f.recvDropped.Add(1)
				f.metrics.Load().Dropped()
				return "", nil, err
			}
		}
		return from, msg, nil
	}
}

// sleepCtx waits d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
