//go:build linux && (amd64 || arm64)

package transport

import (
	"net"
	"syscall"
	"unsafe"
)

// Batched datagram I/O via raw sendmmsg(2)/recvmmsg(2). The module has no
// dependency on golang.org/x/net, so the vectorized syscalls are invoked
// directly; MSG_DONTWAIT inside syscall.RawConn.Read/Write callbacks keeps
// the socket integrated with the runtime netpoller (returning false from
// the callback parks the goroutine until the socket is ready, exactly like
// a blocking net.UDPConn read — no spinning).
//
// The build is gated to 64-bit Linux: the mmsghdr layout below assumes
// 8-byte alignment of syscall.Msghdr, and SYS_SENDMMSG/SYS_RECVMMSG exist
// in the stdlib syscall tables for amd64 and arm64. Everything else falls
// back to mmsg_portable.go with identical semantics, one syscall per
// datagram.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// per-message byte count, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

type mmsgIO struct {
	rc syscall.RawConn
	// v6 records the socket family: a dual-stack AF_INET6 socket needs
	// IPv4 destinations rewritten as v4-mapped IPv6 sockaddrs.
	v6 bool

	// Scratch arrays sized to the batch, reused across calls. Each loop
	// owns its direction (one sender goroutine, one receiver goroutine),
	// so no locking is needed.
	sendHdrs []mmsghdr
	sendIovs []syscall.Iovec
	recvHdrs []mmsghdr
	recvIovs []syscall.Iovec
}

func newBatchIO(conn *net.UDPConn, batch int) (udpBatchIO, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	la, _ := conn.LocalAddr().(*net.UDPAddr)
	return &mmsgIO{
		rc:       rc,
		v6:       la != nil && la.IP.To4() == nil,
		sendHdrs: make([]mmsghdr, batch),
		sendIovs: make([]syscall.Iovec, batch),
		recvHdrs: make([]mmsghdr, batch),
		recvIovs: make([]syscall.Iovec, batch),
	}, nil
}

// destSockaddr builds the raw sockaddr bytes for ua once, at peer-cache
// time, so the send hot path only installs a pointer.
func (io *mmsgIO) destSockaddr(ua *net.UDPAddr) ([]byte, error) {
	if v4 := ua.IP.To4(); v4 != nil && !io.v6 {
		var sa syscall.RawSockaddrInet4
		sa.Family = syscall.AF_INET
		sa.Port = htons(ua.Port)
		copy(sa.Addr[:], v4)
		return append([]byte(nil), (*(*[syscall.SizeofSockaddrInet4]byte)(unsafe.Pointer(&sa)))[:]...), nil
	}
	var sa syscall.RawSockaddrInet6
	sa.Family = syscall.AF_INET6
	sa.Port = htons(ua.Port)
	ip := ua.IP.To16() // v4 destinations become v4-mapped for the v6 socket
	if ip == nil {
		return nil, ErrUnknownPeer
	}
	copy(sa.Addr[:], ip)
	return append([]byte(nil), (*(*[syscall.SizeofSockaddrInet6]byte)(unsafe.Pointer(&sa)))[:]...), nil
}

// htons converts a port to network byte order.
func htons(p int) uint16 { return uint16(p)<<8 | uint16(p)>>8 }

// sendBatch transmits up to len(batch) datagrams with one sendmmsg call.
func (io *mmsgIO) sendBatch(batch []outDatagram) (int, error) {
	n := len(batch)
	if n > len(io.sendHdrs) {
		n = len(io.sendHdrs)
	}
	for i := 0; i < n; i++ {
		b := batch[i].b
		io.sendIovs[i].Base = &b[0]
		io.sendIovs[i].SetLen(len(b))
		h := &io.sendHdrs[i]
		h.hdr = syscall.Msghdr{}
		sa := batch[i].dest.sa
		h.hdr.Name = &sa[0]
		h.hdr.Namelen = uint32(len(sa))
		h.hdr.Iov = &io.sendIovs[i]
		h.hdr.Iovlen = 1
		h.len = 0
	}
	var sent int
	var opErr error
	err := io.rc.Write(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&io.sendHdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno == syscall.EAGAIN {
			return false // socket buffer full: park on the netpoller
		}
		if errno != 0 {
			opErr = errno // errno implies zero datagrams sent (batch[0] failed)
			return true
		}
		sent = int(r)
		return true
	})
	if err != nil {
		return sent, err
	}
	return sent, opErr
}

// recvBatch blocks for at least one datagram, then drains up to
// len(io.recvHdrs) with one recvmmsg call. Sender sockaddrs are not
// collected (msg_name stays nil): the overlay learns the peer's canonical
// address from the in-datagram sender prefix instead.
func (io *mmsgIO) recvBatch(bufs [][]byte, lens []int) (int, error) {
	n := len(bufs)
	if n > len(io.recvHdrs) {
		n = len(io.recvHdrs)
	}
	for i := 0; i < n; i++ {
		io.recvIovs[i].Base = &bufs[i][0]
		io.recvIovs[i].SetLen(len(bufs[i]))
		h := &io.recvHdrs[i]
		h.hdr = syscall.Msghdr{}
		h.hdr.Iov = &io.recvIovs[i]
		h.hdr.Iovlen = 1
		h.len = 0
	}
	var got int
	var opErr error
	err := io.rc.Read(func(fd uintptr) bool {
		r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&io.recvHdrs[0])), uintptr(n),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if errno == syscall.EAGAIN {
			return false // nothing queued: park on the netpoller
		}
		if errno != 0 {
			opErr = errno
			return true
		}
		got = int(r)
		return true
	})
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	for i := 0; i < got; i++ {
		lens[i] = int(io.recvHdrs[i].len)
	}
	return got, nil
}
