package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"ncast/internal/obs"
)

// TCPEndpoint implements Endpoint over TCP: it listens on its own address
// and lazily dials peers, caching one outbound connection per peer. Each
// frame on the wire is [4B addr len][sender addr][payload], inside the
// standard length-prefixed framing, so receivers learn the sender's
// listening address (needed to reply — the tracker addresses nodes by
// their listening address, not their ephemeral dialing port).
type TCPEndpoint struct {
	ln      net.Listener
	addr    string
	recv    chan memFrame
	mu      sync.Mutex
	conns   map[string]*Conn
	inbound map[*Conn]struct{}
	closed  bool
	wg      sync.WaitGroup
	done    chan struct{}
	metrics atomic.Pointer[obs.TransportMetrics]
}

var (
	_ Endpoint       = (*TCPEndpoint)(nil)
	_ Instrumentable = (*TCPEndpoint)(nil)
)

// SetMetrics attaches obs counters to the endpoint.
func (e *TCPEndpoint) SetMetrics(m *obs.TransportMetrics) { e.metrics.Store(m) }

// ListenTCP creates an endpoint listening on addr (e.g. "127.0.0.1:0").
func ListenTCP(addr string) (*TCPEndpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	e := &TCPEndpoint{
		ln:      ln,
		addr:    ln.Addr().String(),
		recv:    make(chan memFrame, 256),
		conns:   make(map[string]*Conn),
		inbound: make(map[*Conn]struct{}),
		done:    make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the listening address.
func (e *TCPEndpoint) Addr() string { return e.addr }

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := NewConn(conn)
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			c.Close()
			return
		}
		e.inbound[c] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go e.readLoop(c)
	}
}

func (e *TCPEndpoint) readLoop(c *Conn) {
	defer e.wg.Done()
	defer func() {
		c.Close()
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	for {
		frame, err := c.Recv()
		if err != nil {
			return
		}
		from, payload, err := splitSender(frame)
		if err != nil {
			return // malformed peer; drop the connection
		}
		select {
		case e.recv <- memFrame{from: from, msg: payload}:
			e.metrics.Load().Received(len(payload))
		case <-e.done:
			return
		}
	}
}

func splitSender(frame []byte) (string, []byte, error) {
	if len(frame) < 4 {
		return "", nil, errors.New("transport: short sender-prefixed frame")
	}
	n := binary.BigEndian.Uint32(frame)
	// Compare in uint64 space: a peer-controlled length near MaxUint32
	// converted with int(n) goes negative on 32-bit platforms, slips past
	// a signed bounds check, and panics on the slice below.
	if uint64(n) > uint64(len(frame)-4) {
		return "", nil, errors.New("transport: bad sender length")
	}
	return string(frame[4 : 4+n]), frame[4+n:], nil
}

func prependSender(from string, msg []byte) []byte {
	out := make([]byte, 4+len(from)+len(msg))
	binary.BigEndian.PutUint32(out, uint32(len(from)))
	copy(out[4:], from)
	copy(out[4+len(from):], msg)
	return out
}

// Send implements Endpoint. It dials the peer on first use and reuses the
// connection afterwards; a send error invalidates the cached connection so
// the next send redials.
func (e *TCPEndpoint) Send(ctx context.Context, to string, msg []byte) error {
	m := e.metrics.Load()
	conn, err := e.conn(ctx, to)
	if err != nil {
		m.Dropped()
		return err
	}
	start := m.Start()
	if err := conn.Send(ctx, prependSender(e.addr, msg)); err != nil {
		e.dropConn(to, conn)
		m.Dropped()
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	m.Sent(len(msg))
	m.ObserveSend(start)
	return nil
}

func (e *TCPEndpoint) conn(ctx context.Context, to string) (*Conn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return c, nil
	}
	e.mu.Unlock()

	var d net.Dialer
	raw, err := d.DialContext(ctx, "tcp", to)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", to, err)
	}
	c := NewConn(raw)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		c.Close()
		return nil, ErrClosed
	}
	if existing, ok := e.conns[to]; ok {
		c.Close() // lost the race; reuse the winner
		return existing, nil
	}
	e.conns[to] = c
	return c, nil
}

func (e *TCPEndpoint) dropConn(to string, c *Conn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	c.Close()
}

// Recv implements Endpoint.
func (e *TCPEndpoint) Recv(ctx context.Context) (string, []byte, error) {
	select {
	case f := <-e.recv:
		return f.from, f.msg, nil
	case <-e.done:
		return "", nil, ErrClosed
	case <-ctx.Done():
		return "", nil, ctx.Err()
	}
}

// Close implements Endpoint: it stops the listener, closes cached
// connections, and waits for reader goroutines to exit.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	for _, c := range e.conns {
		c.Close()
	}
	e.conns = map[string]*Conn{}
	// Close accepted connections too: their readLoops block in Recv and
	// would otherwise stall the WaitGroup below forever.
	for c := range e.inbound {
		c.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}
