//go:build linux && amd64

package transport

// The stdlib syscall table on linux/amd64 predates sendmmsg, so the
// numbers are pinned here (they are ABI-frozen per arch).
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
