package transport

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestSendDeadlineNonReadingPeer: a TCP peer that accepts the connection
// but never reads must not be able to block Send past the caller's
// context deadline. Before Conn.Send honored the context, the write
// blocked indefinitely once the kernel socket buffers filled, freezing
// whatever goroutine was sending (notably the tracker's dispatch loop).
func TestSendDeadlineNonReadingPeer(t *testing.T) {
	t.Parallel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Accept and hold connections open without ever reading from them.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				<-stop
				conn.Close()
			}()
		}
	}()

	ep, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	// Pump large frames until the socket buffers fill and the write
	// deadline fires. 64 MiB total is far beyond any kernel default.
	msg := make([]byte, 1<<20)
	const deadline = 300 * time.Millisecond
	sawTimeout := false
	for i := 0; i < 64; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		err := ep.Send(ctx, ln.Addr().String(), msg)
		elapsed := time.Since(start)
		cancel()
		if elapsed > deadline+2*time.Second {
			t.Fatalf("send %d took %v, far beyond the %v deadline", i, elapsed, deadline)
		}
		if err != nil {
			sawTimeout = true
			break
		}
	}
	if !sawTimeout {
		t.Fatal("64 MiB to a non-reading peer never hit the write deadline")
	}
}
