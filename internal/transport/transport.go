// Package transport provides the message transports the protocol layer
// runs on: an in-memory transport with configurable latency and loss (for
// tests and simulations — the substitution for real residential links
// documented in DESIGN.md) and a TCP transport (for the cmd/ tools).
//
// The abstraction is deliberately minimal: datagram-style framed messages
// between named endpoints. Reliability semantics are those of the
// underlying medium — the in-memory transport can drop frames when
// configured with loss, mimicking ergodic failures; TCP never drops.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ncast/internal/obs"
)

// ErrClosed is returned after an endpoint or network is closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an address with no endpoint.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// MuxSep separates a multiplexing endpoint's address from a virtual
// sub-address: a frame sent to "swarm0"+MuxSep+"n42" is delivered to the
// endpoint registered as "swarm0", which demultiplexes by the full
// destination (RecvTo). The separator is reserved across transports —
// no plain endpoint address may contain it — so PeerKey can map any
// address to the transport-level peer it rides to.
const MuxSep = '!'

// PeerKey returns the transport-level peer an address routes to: the
// base endpoint for mux sub-addresses, the address itself otherwise.
// Control planes that keep per-peer state (the tracker's outbox workers)
// key it by PeerKey so a thousand virtual nodes multiplexed behind one
// endpoint cost one worker, not a thousand.
func PeerKey(addr string) string {
	for i := 0; i < len(addr); i++ {
		if addr[i] == MuxSep {
			return addr[:i]
		}
	}
	return addr
}

// maxFrame bounds a frame's size on stream transports (16 MiB).
const maxFrame = 16 << 20

// Instrumentable is implemented by endpoints that can carry obs metrics.
// Both built-in endpoint types do.
type Instrumentable interface {
	// SetMetrics attaches the bundle; it is safe to call concurrently
	// with traffic and with a nil bundle (which un-instruments).
	SetMetrics(*obs.TransportMetrics)
}

// Instrument attaches m to ep when ep supports it; a no-op otherwise.
func Instrument(ep Endpoint, m *obs.TransportMetrics) {
	if i, ok := ep.(Instrumentable); ok {
		i.SetMetrics(m)
	}
}

// Endpoint is one side of a transport: it can send framed messages to
// named peers and receive messages addressed to it.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send delivers msg to the named peer. It may fail fast (unknown
	// peer, closed) or silently drop (lossy media), but never blocks
	// beyond the context.
	Send(ctx context.Context, to string, msg []byte) error
	// Recv blocks for the next message, returning the sender's address.
	Recv(ctx context.Context) (from string, msg []byte, err error)
	// Close releases the endpoint; pending and future Recv calls fail.
	Close() error
}

// Network is an in-memory message fabric connecting named endpoints.
type Network struct {
	mu        sync.Mutex
	endpoints map[string]*memEndpoint
	rng       *rand.Rand
	loss      float64
	latency   time.Duration
	closed    bool
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithLoss drops each frame independently with probability p (ergodic
// failures of §2).
func WithLoss(p float64) NetworkOption {
	return func(n *Network) { n.loss = p }
}

// WithLatency delays each delivery by d.
func WithLatency(d time.Duration) NetworkOption {
	return func(n *Network) { n.latency = d }
}

// WithSeed seeds the loss coin.
func WithSeed(seed int64) NetworkOption {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewNetwork creates an in-memory fabric.
func NewNetwork(opts ...NetworkOption) *Network {
	n := &Network{
		endpoints: make(map[string]*memEndpoint),
		rng:       rand.New(rand.NewSource(0)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint registers (or returns an error for a duplicate) address.
func (n *Network) Endpoint(addr string) (Endpoint, error) {
	ep, err := n.register(addr, false, 0)
	if err != nil {
		return nil, err
	}
	return ep, nil
}

// MuxEndpoint registers a multiplexing endpoint: frames addressed to any
// sub-address addr+MuxSep+suffix are delivered here, and SendAs lets the
// caller originate frames from those sub-addresses. One MuxEndpoint
// therefore carries arbitrarily many virtual peers on a single channel —
// the transport substrate for the swarm harness. bufFrames sizes the
// receive buffer (0 means the default 256); mux endpoints aggregating
// thousands of virtual nodes want it deep enough to absorb reply bursts.
func (n *Network) MuxEndpoint(addr string, bufFrames int) (*MuxEndpoint, error) {
	ep, err := n.register(addr, true, bufFrames)
	if err != nil {
		return nil, err
	}
	return &MuxEndpoint{memEndpoint: ep}, nil
}

func (n *Network) register(addr string, mux bool, bufFrames int) (*memEndpoint, error) {
	for i := 0; i < len(addr); i++ {
		if addr[i] == MuxSep {
			return nil, fmt.Errorf("transport: address %q contains reserved separator %q", addr, string(MuxSep))
		}
	}
	if bufFrames <= 0 {
		bufFrames = 256
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already registered", addr)
	}
	ep := &memEndpoint{
		net:  n,
		addr: addr,
		mux:  mux,
		ch:   make(chan memFrame, bufFrames),
		done: make(chan struct{}),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// CloseEndpoint force-closes the endpoint at addr without unregistering
// semantics beyond Close: it simulates a node crash (the process dies; the
// address stops consuming frames). It reports whether an endpoint existed.
func (n *Network) CloseEndpoint(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[addr]
	if !ok {
		return false
	}
	ep.closeLocked()
	delete(n.endpoints, addr)
	return true
}

// Close shuts the fabric and every endpoint down.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, ep := range n.endpoints {
		ep.closeLocked()
	}
	return nil
}

type memFrame struct {
	from string
	// to is the full destination address; it differs from the receiving
	// endpoint's own address when the frame was prefix-routed to a mux
	// endpoint, which demultiplexes on it.
	to  string
	msg []byte
	// due is when the frame may be delivered (enqueue time + latency);
	// the zero value means immediately.
	due time.Time
}

type memEndpoint struct {
	net  *Network
	addr string
	// mux marks the endpoint as accepting prefix-routed sub-addresses.
	mux bool
	ch  chan memFrame
	// done signals closure; the data channel itself is never closed, so
	// concurrent senders can never hit a closed-channel panic — they
	// select on done instead.
	done    chan struct{}
	mu      sync.Mutex
	closed  bool
	metrics atomic.Pointer[obs.TransportMetrics]
}

var (
	_ Endpoint       = (*memEndpoint)(nil)
	_ Instrumentable = (*memEndpoint)(nil)
)

func (e *memEndpoint) Addr() string { return e.addr }

// SetMetrics attaches obs counters to the endpoint.
func (e *memEndpoint) SetMetrics(m *obs.TransportMetrics) { e.metrics.Store(m) }

func (e *memEndpoint) Send(ctx context.Context, to string, msg []byte) error {
	return e.sendFrom(ctx, e.addr, to, msg)
}

func (e *memEndpoint) sendFrom(ctx context.Context, from, to string, msg []byte) error {
	m := e.metrics.Load()
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		// Prefix routing: a sub-address routes to its base endpoint, but
		// only when that endpoint opted into demultiplexing — a plain
		// endpoint never sees frames for addresses it didn't register.
		if base := PeerKey(to); base != to {
			if bep, bok := n.endpoints[base]; bok && bep.mux {
				dst, ok = bep, true
			}
		}
	}
	drop := n.loss > 0 && n.rng.Float64() < n.loss
	latency := n.latency
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if drop {
		m.Dropped()
		return nil // silently lost, like a UDP frame on a congested link
	}
	frame := memFrame{from: from, to: to, msg: append([]byte(nil), msg...)}
	if latency > 0 {
		// Latency is applied on the delivery side (Recv waits until the
		// frame is due), so concurrent frames pipeline like packets on a
		// real link instead of serialising their senders. Enqueueing
		// still blocks on a full buffer, which is the backpressure that
		// keeps fast producers honest.
		frame.due = time.Now().Add(latency)
	}
	start := m.Start()
	select {
	case dst.ch <- frame:
		m.Sent(len(msg))
		m.ObserveSend(start)
		return nil
	case <-dst.done:
		m.Dropped()
		return nil // receiver gone: frame lost
	case <-ctx.Done():
		m.Dropped()
		return ctx.Err()
	}
}

func (e *memEndpoint) Recv(ctx context.Context) (string, []byte, error) {
	f, err := e.recvFrame(ctx)
	if err != nil {
		return "", nil, err
	}
	return f.from, f.msg, nil
}

func (e *memEndpoint) recvFrame(ctx context.Context) (memFrame, error) {
	select {
	case f := <-e.ch:
		if wait := time.Until(f.due); wait > 0 {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				// The frame is consumed but undelivered: model it as
				// lost in flight, like a datagram on a dying link.
				e.metrics.Load().Dropped()
				return memFrame{}, ctx.Err()
			}
		}
		e.metrics.Load().Received(len(f.msg))
		return f, nil
	case <-e.done:
		return memFrame{}, ErrClosed
	case <-ctx.Done():
		return memFrame{}, ctx.Err()
	}
}

// MuxEndpoint is an in-memory endpoint that carries many virtual peers:
// frames to any addr+MuxSep+suffix sub-address arrive here (RecvTo reports
// which one), and SendAs originates frames from those sub-addresses. It
// still satisfies Endpoint — plain Recv drops the destination, plain Send
// originates from the base address.
type MuxEndpoint struct {
	*memEndpoint
}

// RecvTo blocks for the next frame, returning both the sender and the
// full destination address the frame was sent to.
func (e *MuxEndpoint) RecvTo(ctx context.Context) (from, to string, msg []byte, err error) {
	f, err := e.recvFrame(ctx)
	if err != nil {
		return "", "", nil, err
	}
	to = f.to
	if to == "" {
		to = e.addr
	}
	return f.from, to, f.msg, nil
}

// SendAs delivers msg to the named peer with from as the sender address.
// from must be this endpoint's address or one of its sub-addresses; the
// restriction keeps virtual senders answerable — replies to from route
// back to this endpoint.
func (e *MuxEndpoint) SendAs(ctx context.Context, from, to string, msg []byte) error {
	if PeerKey(from) != e.addr {
		return fmt.Errorf("transport: SendAs from %q does not route to endpoint %q", from, e.addr)
	}
	return e.sendFrom(ctx, from, to, msg)
}

func (e *memEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closeLocked()
	// Unregister only if the address still maps to this endpoint: after a
	// crash simulated via Network.CloseEndpoint plus a rejoin that
	// re-registered the same address, closing the old endpoint must not
	// evict its successor.
	if e.net.endpoints[e.addr] == e {
		delete(e.net.endpoints, e.addr)
	}
	return nil
}

func (e *memEndpoint) closeLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, msg []byte) error {
	if len(msg) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("transport: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads a length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("transport: read frame body: %w", err)
	}
	return msg, nil
}

// Conn is a framed, bidirectional stream connection (TCP or net.Pipe).
type Conn struct {
	c  net.Conn
	wm sync.Mutex
	rm sync.Mutex
}

// NewConn wraps a net.Conn with frame semantics.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Send writes one frame, honoring the context's deadline as a write
// deadline on the underlying connection. Safe for concurrent use. Without
// it a peer that stops reading leaves the writer blocked forever once the
// kernel buffers fill; with it the write fails at the deadline and the
// caller can drop the connection. A deadline error can leave a partial
// frame on the wire, so callers must discard the connection after any
// error (TCPEndpoint does).
func (c *Conn) Send(ctx context.Context, msg []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.c.SetWriteDeadline(deadline); err != nil {
			return fmt.Errorf("transport: set write deadline: %w", err)
		}
		defer c.c.SetWriteDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	return WriteFrame(c.c, msg)
}

// Recv reads one frame. Safe for concurrent use with Send.
func (c *Conn) Recv() ([]byte, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	return ReadFrame(c.c)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }
