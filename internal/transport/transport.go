// Package transport provides the message transports the protocol layer
// runs on: an in-memory transport with configurable latency and loss (for
// tests and simulations — the substitution for real residential links
// documented in DESIGN.md) and a TCP transport (for the cmd/ tools).
//
// The abstraction is deliberately minimal: datagram-style framed messages
// between named endpoints. Reliability semantics are those of the
// underlying medium — the in-memory transport can drop frames when
// configured with loss, mimicking ergodic failures; TCP never drops.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ncast/internal/obs"
)

// ErrClosed is returned after an endpoint or network is closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is returned when sending to an address with no endpoint.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// maxFrame bounds a frame's size on stream transports (16 MiB).
const maxFrame = 16 << 20

// Instrumentable is implemented by endpoints that can carry obs metrics.
// Both built-in endpoint types do.
type Instrumentable interface {
	// SetMetrics attaches the bundle; it is safe to call concurrently
	// with traffic and with a nil bundle (which un-instruments).
	SetMetrics(*obs.TransportMetrics)
}

// Instrument attaches m to ep when ep supports it; a no-op otherwise.
func Instrument(ep Endpoint, m *obs.TransportMetrics) {
	if i, ok := ep.(Instrumentable); ok {
		i.SetMetrics(m)
	}
}

// Endpoint is one side of a transport: it can send framed messages to
// named peers and receive messages addressed to it.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Send delivers msg to the named peer. It may fail fast (unknown
	// peer, closed) or silently drop (lossy media), but never blocks
	// beyond the context.
	Send(ctx context.Context, to string, msg []byte) error
	// Recv blocks for the next message, returning the sender's address.
	Recv(ctx context.Context) (from string, msg []byte, err error)
	// Close releases the endpoint; pending and future Recv calls fail.
	Close() error
}

// Network is an in-memory message fabric connecting named endpoints.
type Network struct {
	mu        sync.Mutex
	endpoints map[string]*memEndpoint
	rng       *rand.Rand
	loss      float64
	latency   time.Duration
	closed    bool
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithLoss drops each frame independently with probability p (ergodic
// failures of §2).
func WithLoss(p float64) NetworkOption {
	return func(n *Network) { n.loss = p }
}

// WithLatency delays each delivery by d.
func WithLatency(d time.Duration) NetworkOption {
	return func(n *Network) { n.latency = d }
}

// WithSeed seeds the loss coin.
func WithSeed(seed int64) NetworkOption {
	return func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewNetwork creates an in-memory fabric.
func NewNetwork(opts ...NetworkOption) *Network {
	n := &Network{
		endpoints: make(map[string]*memEndpoint),
		rng:       rand.New(rand.NewSource(0)),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint registers (or returns an error for a duplicate) address.
func (n *Network) Endpoint(addr string) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already registered", addr)
	}
	ep := &memEndpoint{
		net:  n,
		addr: addr,
		ch:   make(chan memFrame, 256),
		done: make(chan struct{}),
	}
	n.endpoints[addr] = ep
	return ep, nil
}

// CloseEndpoint force-closes the endpoint at addr without unregistering
// semantics beyond Close: it simulates a node crash (the process dies; the
// address stops consuming frames). It reports whether an endpoint existed.
func (n *Network) CloseEndpoint(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.endpoints[addr]
	if !ok {
		return false
	}
	ep.closeLocked()
	delete(n.endpoints, addr)
	return true
}

// Close shuts the fabric and every endpoint down.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil
	}
	n.closed = true
	for _, ep := range n.endpoints {
		ep.closeLocked()
	}
	return nil
}

type memFrame struct {
	from string
	msg  []byte
	// due is when the frame may be delivered (enqueue time + latency);
	// the zero value means immediately.
	due time.Time
}

type memEndpoint struct {
	net  *Network
	addr string
	ch   chan memFrame
	// done signals closure; the data channel itself is never closed, so
	// concurrent senders can never hit a closed-channel panic — they
	// select on done instead.
	done    chan struct{}
	mu      sync.Mutex
	closed  bool
	metrics atomic.Pointer[obs.TransportMetrics]
}

var (
	_ Endpoint       = (*memEndpoint)(nil)
	_ Instrumentable = (*memEndpoint)(nil)
)

func (e *memEndpoint) Addr() string { return e.addr }

// SetMetrics attaches obs counters to the endpoint.
func (e *memEndpoint) SetMetrics(m *obs.TransportMetrics) { e.metrics.Store(m) }

func (e *memEndpoint) Send(ctx context.Context, to string, msg []byte) error {
	m := e.metrics.Load()
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	drop := n.loss > 0 && n.rng.Float64() < n.loss
	latency := n.latency
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if drop {
		m.Dropped()
		return nil // silently lost, like a UDP frame on a congested link
	}
	frame := memFrame{from: e.addr, msg: append([]byte(nil), msg...)}
	if latency > 0 {
		// Latency is applied on the delivery side (Recv waits until the
		// frame is due), so concurrent frames pipeline like packets on a
		// real link instead of serialising their senders. Enqueueing
		// still blocks on a full buffer, which is the backpressure that
		// keeps fast producers honest.
		frame.due = time.Now().Add(latency)
	}
	start := m.Start()
	select {
	case dst.ch <- frame:
		m.Sent(len(msg))
		m.ObserveSend(start)
		return nil
	case <-dst.done:
		m.Dropped()
		return nil // receiver gone: frame lost
	case <-ctx.Done():
		m.Dropped()
		return ctx.Err()
	}
}

func (e *memEndpoint) Recv(ctx context.Context) (string, []byte, error) {
	select {
	case f := <-e.ch:
		if wait := time.Until(f.due); wait > 0 {
			timer := time.NewTimer(wait)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
				// The frame is consumed but undelivered: model it as
				// lost in flight, like a datagram on a dying link.
				e.metrics.Load().Dropped()
				return "", nil, ctx.Err()
			}
		}
		e.metrics.Load().Received(len(f.msg))
		return f.from, f.msg, nil
	case <-e.done:
		return "", nil, ErrClosed
	case <-ctx.Done():
		return "", nil, ctx.Err()
	}
}

func (e *memEndpoint) Close() error {
	e.net.mu.Lock()
	defer e.net.mu.Unlock()
	e.closeLocked()
	// Unregister only if the address still maps to this endpoint: after a
	// crash simulated via Network.CloseEndpoint plus a rejoin that
	// re-registered the same address, closing the old endpoint must not
	// evict its successor.
	if e.net.endpoints[e.addr] == e {
		delete(e.net.endpoints, e.addr)
	}
	return nil
}

func (e *memEndpoint) closeLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.done)
	}
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, msg []byte) error {
	if len(msg) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := w.Write(msg); err != nil {
		return fmt.Errorf("transport: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads a length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return nil, fmt.Errorf("transport: read frame body: %w", err)
	}
	return msg, nil
}

// Conn is a framed, bidirectional stream connection (TCP or net.Pipe).
type Conn struct {
	c  net.Conn
	wm sync.Mutex
	rm sync.Mutex
}

// NewConn wraps a net.Conn with frame semantics.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Send writes one frame, honoring the context's deadline as a write
// deadline on the underlying connection. Safe for concurrent use. Without
// it a peer that stops reading leaves the writer blocked forever once the
// kernel buffers fill; with it the write fails at the deadline and the
// caller can drop the connection. A deadline error can leave a partial
// frame on the wire, so callers must discard the connection after any
// error (TCPEndpoint does).
func (c *Conn) Send(ctx context.Context, msg []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	if deadline, ok := ctx.Deadline(); ok {
		if err := c.c.SetWriteDeadline(deadline); err != nil {
			return fmt.Errorf("transport: set write deadline: %w", err)
		}
		defer c.c.SetWriteDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	return WriteFrame(c.c, msg)
}

// Recv reads one frame. Safe for concurrent use with Send.
func (c *Conn) Recv() ([]byte, error) {
	c.rm.Lock()
	defer c.rm.Unlock()
	return ReadFrame(c.c)
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// RemoteAddr exposes the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }
