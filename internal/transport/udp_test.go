package transport

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ncast/internal/obs"
)

func listenUDPPair(t *testing.T, cfg UDPConfig) (*UDPEndpoint, *UDPEndpoint) {
	t.Helper()
	a, err := ListenUDP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenUDP("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	return a, b
}

func recvOne(t *testing.T, ep Endpoint, timeout time.Duration) (string, []byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	from, msg, err := ep.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return from, msg
}

func TestUDPEndpointRoundTrip(t *testing.T) {
	t.Parallel()
	a, b := listenUDPPair(t, UDPConfig{})
	ctx := context.Background()
	if err := a.Send(ctx, b.Addr(), []byte("over udp")); err != nil {
		t.Fatal(err)
	}
	from, msg := recvOne(t, b, 2*time.Second)
	if from != a.Addr() || string(msg) != "over udp" {
		t.Fatalf("got %q from %q (want from %q)", msg, from, a.Addr())
	}
	// Reply using the learned (advertised) sender address.
	if err := b.Send(ctx, from, []byte("ack")); err != nil {
		t.Fatal(err)
	}
	if _, msg := recvOne(t, a, 2*time.Second); string(msg) != "ack" {
		t.Fatalf("reply = %q", msg)
	}
}

func TestUDPEndpointManyFramesBatched(t *testing.T) {
	t.Parallel()
	// A small pacing window invites coalescing; BatchSize 16 keeps the
	// histogram interesting. Loopback does not reorder often but UDP
	// permits it, so assert the multiset of payloads, not the order.
	cfg := UDPConfig{Pacing: 2 * time.Millisecond, BatchSize: 16}
	a, b := listenUDPPair(t, cfg)
	reg := obs.NewRegistry()
	ma := obs.NewTransportMetricsKind(reg, "a", "udp")
	mb := obs.NewTransportMetricsKind(reg, "b", "udp")
	Instrument(a, ma)
	Instrument(b, mb)

	ctx := context.Background()
	const n = 256
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < n/4; j++ {
				payload := []byte{byte(base + j), 0xCA}
				if err := a.Send(ctx, b.Addr(), payload); err != nil {
					t.Errorf("send: %v", err)
				}
			}
		}(i * (n / 4))
	}
	wg.Wait()

	seen := make(map[byte]int)
	deadline := time.After(5 * time.Second)
	got := 0
	for got < n {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		_, msg, err := b.Recv(ctx)
		cancel()
		if err != nil {
			// UDP may legitimately drop under pressure; accept a mostly
			// complete run on loopback but require real traffic.
			break
		}
		seen[msg[0]]++
		got++
		select {
		case <-deadline:
			t.Fatal("timed out draining")
		default:
		}
	}
	if got < n/2 {
		t.Fatalf("received %d of %d frames over loopback", got, n)
	}
	// The send path must have used fewer syscalls than frames (batching)
	// and the batch histogram must have fired.
	if ma.SendBatch.Count() == 0 {
		t.Fatal("send batch histogram never observed")
	}
	if ma.SendBatch.Count() >= ma.FramesSent.Value() {
		t.Fatalf("no coalescing: %d batches for %d frames",
			ma.SendBatch.Count(), ma.FramesSent.Value())
	}
	if mb.RecvBatch.Count() == 0 {
		t.Fatal("recv batch histogram never observed")
	}
	if mb.FramesRecv.Value() == 0 {
		t.Fatal("recv frames counter never incremented")
	}
}

func TestUDPEndpointOversizeFrameRejected(t *testing.T) {
	t.Parallel()
	a, b := listenUDPPair(t, UDPConfig{MTU: 256})
	reg := obs.NewRegistry()
	m := obs.NewTransportMetricsKind(reg, "a", "udp")
	Instrument(a, m)
	err := a.Send(context.Background(), b.Addr(), make([]byte, 512))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if m.Drops.Value() != 1 {
		t.Fatalf("Drops = %d, want 1", m.Drops.Value())
	}
	// A frame that exactly fits still goes through.
	fit := make([]byte, 256-4-len(a.Addr()))
	if err := a.Send(context.Background(), b.Addr(), fit); err != nil {
		t.Fatal(err)
	}
	if _, msg := recvOne(t, b, 2*time.Second); len(msg) != len(fit) {
		t.Fatalf("fit frame = %d bytes, want %d", len(msg), len(fit))
	}
}

func TestUDPEndpointCloseUnblocksRecv(t *testing.T) {
	t.Parallel()
	a, err := ListenUDP("127.0.0.1:0", UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := a.Recv(context.Background())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Send after close fails fast; double close is fine.
	if err := a.Send(context.Background(), "127.0.0.1:1", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPEndpointPayloadIntegrity(t *testing.T) {
	t.Parallel()
	a, b := listenUDPPair(t, UDPConfig{})
	ctx := context.Background()
	want := bytes.Repeat([]byte{0x5A, 0xA5, 0x00, 0xFF}, 300) // 1200 B, near MTU
	if err := a.Send(ctx, b.Addr(), want); err != nil {
		t.Fatal(err)
	}
	_, got := recvOne(t, b, 2*time.Second)
	if !bytes.Equal(got, want) {
		t.Fatalf("payload corrupted: %d bytes vs %d", len(got), len(want))
	}
	// The sender may reuse its buffer immediately (Send copies).
	if err := a.Send(ctx, b.Addr(), want[:8]); err != nil {
		t.Fatal(err)
	}
	for i := range want[:8] {
		want[i] = 0
	}
	_, got = recvOne(t, b, 2*time.Second)
	if got[0] != 0x5A {
		t.Fatal("Send aliased the caller's buffer")
	}
}

func TestListenSamePortSharesAddress(t *testing.T) {
	t.Parallel()
	tcp, udp, err := ListenSamePort("127.0.0.1:0", UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	defer udp.Close()
	if tcp.Addr() != udp.Addr() {
		t.Fatalf("tcp %q != udp %q", tcp.Addr(), udp.Addr())
	}

	// Both planes carry traffic independently on the shared port.
	tcp2, udp2, err := ListenSamePort("127.0.0.1:0", UDPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp2.Close()
	defer udp2.Close()
	ctx := context.Background()
	if err := tcp.Send(ctx, tcp2.Addr(), []byte("ctrl")); err != nil {
		t.Fatal(err)
	}
	if err := udp.Send(ctx, udp2.Addr(), []byte("data")); err != nil {
		t.Fatal(err)
	}
	if from, msg := recvOne(t, tcp2, 2*time.Second); from != tcp.Addr() || string(msg) != "ctrl" {
		t.Fatalf("tcp got %q from %q", msg, from)
	}
	if from, msg := recvOne(t, udp2, 2*time.Second); from != udp.Addr() || string(msg) != "data" {
		t.Fatalf("udp got %q from %q", msg, from)
	}
}

func TestDualRoutesByClassifier(t *testing.T) {
	t.Parallel()
	// Two fabrics under one address space: the data fabric drops
	// everything, so a frame that arrives proves it rode the control
	// plane and a frame that vanishes proves it rode the data plane.
	ctrlNet := NewNetwork()
	dataNet := NewNetwork(WithLoss(1.0), WithSeed(7))
	defer ctrlNet.Close()
	defer dataNet.Close()
	isData := func(msg []byte) bool { return len(msg) > 0 && msg[0] == 0 }

	mkDual := func(addr string) *Dual {
		c, err := ctrlNet.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dataNet.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		return NewDual(c, d, isData)
	}
	a := mkDual("a")
	b := mkDual("b")
	defer a.Close()
	defer b.Close()

	ctx := context.Background()
	if err := a.Send(ctx, "b", []byte{1, 'c'}); err != nil { // control
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", []byte{0, 'd'}); err != nil { // data, dropped
		t.Fatal(err)
	}
	if from, msg := recvOne(t, b, 2*time.Second); from != "a" || msg[1] != 'c' {
		t.Fatalf("control frame: %q from %q", msg, from)
	}
	rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, _, err := b.Recv(rctx); err == nil {
		t.Fatal("data frame leaked onto the control plane")
	}
}

func TestDualMergesBothPlanes(t *testing.T) {
	t.Parallel()
	ctrlNet := NewNetwork()
	dataNet := NewNetwork()
	defer ctrlNet.Close()
	defer dataNet.Close()
	isData := func(msg []byte) bool { return msg[0] == 0 }
	mk := func(addr string) *Dual {
		c, _ := ctrlNet.Endpoint(addr)
		d, _ := dataNet.Endpoint(addr)
		return NewDual(c, d, isData)
	}
	a, b := mk("a"), mk("b")
	defer a.Close()
	defer b.Close()
	ctx := context.Background()
	if err := a.Send(ctx, "b", []byte{0, 'd'}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(ctx, "b", []byte{1, 'c'}); err != nil {
		t.Fatal(err)
	}
	kinds := map[byte]bool{}
	for i := 0; i < 2; i++ {
		_, msg := recvOne(t, b, 2*time.Second)
		kinds[msg[0]] = true
	}
	if !kinds[0] || !kinds[1] {
		t.Fatalf("merged stream missing a plane: %v", kinds)
	}
	if a.Addr() != "a" {
		t.Fatalf("Addr = %q", a.Addr())
	}
	// Close unblocks Recv on the merged stream.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Recv(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close: %v", err)
	}
}
