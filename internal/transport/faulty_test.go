package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"ncast/internal/obs"
)

// faultyPair builds two in-memory endpoints with a Faulty wrapper on a.
func faultyPair(t *testing.T, cfg FaultConfig) (*Faulty, Endpoint, *Network) {
	t.Helper()
	net := NewNetwork()
	rawA, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { net.Close() })
	return NewFaulty(rawA, cfg), b, net
}

func TestFaultyPassThrough(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{})
	ctx := context.Background()
	if err := a.Send(ctx, "b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	from, msg, err := b.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if from != "a" || string(msg) != "hi" {
		t.Fatalf("got %q from %q", msg, from)
	}
	if a.Addr() != "a" {
		t.Fatalf("Addr = %q", a.Addr())
	}
}

func TestFaultySendLossIsSeededAndCounted(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{SendLoss: 0.5, Seed: 42})
	ctx := context.Background()
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(ctx, "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dropped := a.Stats().SendDropped
	if dropped == 0 || dropped == n {
		t.Fatalf("dropped = %d of %d, want strictly between", dropped, n)
	}
	// Every surviving frame must be receivable.
	got := 0
	for i := uint64(0); i < n-dropped; i++ {
		rctx, cancel := context.WithTimeout(ctx, time.Second)
		_, _, err := b.Recv(rctx)
		cancel()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got++
	}
	if uint64(got) != n-dropped {
		t.Fatalf("received %d, want %d", got, n-dropped)
	}
}

func TestFaultyDuplicate(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{DupProb: 1, Seed: 1})
	ctx := context.Background()
	if err := a.Send(ctx, "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rctx, cancel := context.WithTimeout(ctx, time.Second)
		_, msg, err := b.Recv(rctx)
		cancel()
		if err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
		if string(msg) != "x" {
			t.Fatalf("copy %d = %q", i, msg)
		}
	}
	if a.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d", a.Stats().Duplicated)
	}
}

func TestFaultyRecvLossDropsInbound(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{RecvLoss: 1, Seed: 3})
	ctx := context.Background()
	if err := b.Send(ctx, "a", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, _, err := a.Recv(rctx); err == nil {
		t.Fatal("frame survived RecvLoss = 1")
	}
	if a.Stats().RecvDropped != 1 {
		t.Fatalf("RecvDropped = %d", a.Stats().RecvDropped)
	}
}

func TestFaultyPartitionPerDirectionAndHeal(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{})
	ctx := context.Background()

	// Outbound partition: a -> b vanishes, b -> a still flows.
	a.PartitionOutbound("b")
	if err := a.Send(ctx, "b", []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	if _, _, err := b.Recv(rctx); err == nil {
		t.Fatal("outbound-partitioned frame delivered")
	}
	cancel()
	if err := b.Send(ctx, "a", []byte("inflow")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel = context.WithTimeout(ctx, time.Second)
	if _, _, err := a.Recv(rctx); err != nil {
		t.Fatalf("inbound direction should still flow: %v", err)
	}
	cancel()

	// Inbound partition: frames from b are consumed silently.
	a.Heal()
	a.PartitionInbound("b")
	if err := b.Send(ctx, "a", []byte("muted")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel = context.WithTimeout(ctx, 100*time.Millisecond)
	if _, _, err := a.Recv(rctx); err == nil {
		t.Fatal("inbound-partitioned frame delivered")
	}
	cancel()

	// Heal restores both directions.
	a.Heal()
	if err := a.Send(ctx, "b", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel = context.WithTimeout(ctx, time.Second)
	defer cancel()
	if _, msg, err := b.Recv(rctx); err != nil || string(msg) != "healed" {
		t.Fatalf("after heal: %q, %v", msg, err)
	}
	if a.Stats().Partitioned == 0 {
		t.Fatal("partition counter never fired")
	}
}

func TestFaultyInjectedDropsReachMetrics(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{SendLoss: 1, Seed: 5})
	reg := obs.NewRegistry()
	m := obs.NewTransportMetricsKind(reg, "a", "mem")
	Instrument(a, m)
	ctx := context.Background()

	// A coin-dropped send never reaches the inner endpoint, so only the
	// wrapper can record it.
	if err := a.Send(ctx, "b", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if m.Drops.Value() != 1 {
		t.Fatalf("Drops after SendLoss = %d, want 1", m.Drops.Value())
	}

	// Partition drops count too, in both directions.
	a.Heal()
	a.Partition("b")
	if err := a.Send(ctx, "b", []byte("walled")); err != nil {
		t.Fatal(err)
	}
	if m.Drops.Value() != 2 {
		t.Fatalf("Drops after partitioned send = %d, want 2", m.Drops.Value())
	}
	if err := b.Send(ctx, "a", []byte("walled")); err != nil {
		t.Fatal(err)
	}
	rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if _, _, err := a.Recv(rctx); err == nil {
		t.Fatal("partitioned inbound frame delivered")
	}
	if m.Drops.Value() != 3 {
		t.Fatalf("Drops after partitioned recv = %d, want 3", m.Drops.Value())
	}
	// The real-traffic counters stayed on the inner endpoint untouched by
	// injection (nothing was actually delivered).
	if m.FramesSent.Value() != 0 {
		t.Fatalf("FramesSent = %d for fully dropped traffic", m.FramesSent.Value())
	}
}

func TestFaultyRecvDelayCancelCountsLostFrame(t *testing.T) {
	t.Parallel()
	a, b, _ := faultyPair(t, FaultConfig{RecvDelay: time.Second})
	reg := obs.NewRegistry()
	m := obs.NewTransportMetricsKind(reg, "a", "mem")
	Instrument(a, m)
	ctx := context.Background()
	if err := b.Send(ctx, "a", []byte("in flight")); err != nil {
		t.Fatal(err)
	}
	// The frame is consumed from the inner endpoint, then the context
	// dies during the injected delay: the frame is gone for good and must
	// be accounted as a drop, not silently vanish.
	rctx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, _, err := a.Recv(rctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Recv = %v, want deadline exceeded", err)
	}
	if got := a.Stats().RecvDropped; got != 1 {
		t.Fatalf("RecvDropped = %d, want 1", got)
	}
	if m.Drops.Value() != 1 {
		t.Fatalf("metrics Drops = %d, want 1", m.Drops.Value())
	}
	// The link still works once the consumer stops cancelling early.
	if err := b.Send(ctx, "a", []byte("retry")); err != nil {
		t.Fatal(err)
	}
	rctx2, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	if _, msg, err := a.Recv(rctx2); err != nil || string(msg) != "retry" {
		t.Fatalf("post-cancel recv: %q, %v", msg, err)
	}
}
