package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func mustEdge(t testing.TB, g *Digraph, u, v int) int {
	t.Helper()
	id, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	return id
}

func TestDigraphBasics(t *testing.T) {
	t.Parallel()
	g := NewDigraph(3)
	if g.NumNodes() != 3 || g.NumEdges() != 0 {
		t.Fatalf("fresh graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	id := mustEdge(t, g, 0, 1)
	if e := g.Edge(id); e.From != 0 || e.To != 1 {
		t.Fatalf("Edge(%d) = %+v", id, e)
	}
	mustEdge(t, g, 0, 1) // parallel edges allowed
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 {
		t.Fatalf("degrees after parallel edge: out=%d in=%d", g.OutDegree(0), g.InDegree(1))
	}
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 7); err == nil {
		t.Error("out-of-range edge accepted")
	}
	n := g.AddNode()
	if n != 3 || g.NumNodes() != 4 {
		t.Fatalf("AddNode = %d, nodes = %d", n, g.NumNodes())
	}
}

func TestDepths(t *testing.T) {
	t.Parallel()
	// 0 -> 1 -> 2, 0 -> 3; node 4 unreachable.
	g := NewDigraph(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 3)
	d := g.Depths(0)
	want := []int{0, 1, 2, 1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	mask := g.Reachable(0)
	if mask[4] || !mask[2] {
		t.Error("Reachable mask wrong")
	}
}

func TestMaxFlowDiamond(t *testing.T) {
	t.Parallel()
	// Classic diamond: 0->1, 0->2, 1->3, 2->3 gives flow 2; with the
	// cross edge 1->2 it stays 2 (cut at the source side).
	g := NewDigraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 1, 2)
	fs := NewFlowSolver(g)
	if got := fs.MaxFlow(0, 3, -1); got != 2 {
		t.Fatalf("flow = %d, want 2", got)
	}
	// Limit caps the answer.
	if got := fs.MaxFlow(0, 3, 1); got != 1 {
		t.Fatalf("limited flow = %d, want 1", got)
	}
	// Solver is reusable.
	if got := fs.MaxFlow(0, 3, -1); got != 2 {
		t.Fatalf("second flow = %d, want 2", got)
	}
	if got := fs.MaxFlow(3, 0, -1); got != 0 {
		t.Fatalf("reverse flow = %d, want 0", got)
	}
}

func TestMaxFlowParallelEdges(t *testing.T) {
	t.Parallel()
	g := NewDigraph(2)
	for i := 0; i < 5; i++ {
		mustEdge(t, g, 0, 1)
	}
	fs := NewFlowSolver(g)
	if got := fs.MaxFlow(0, 1, -1); got != 5 {
		t.Fatalf("flow over 5 parallel edges = %d", got)
	}
}

func TestMaxFlowWithExtraEdges(t *testing.T) {
	t.Parallel()
	// Base graph: 0->1, 0->2. Virtual sink 3 attached per query.
	g := NewDigraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	fs := NewFlowSolver(g)
	got := fs.MaxFlow(0, 3, -1, Edge{From: 1, To: 3}, Edge{From: 2, To: 3})
	if got != 2 {
		t.Fatalf("flow with virtual sink = %d, want 2", got)
	}
	// Extra edges must be fully rolled back.
	if got := fs.MaxFlow(0, 3, -1); got != 0 {
		t.Fatalf("flow after rollback = %d, want 0", got)
	}
	// And a different extra set works next.
	got = fs.MaxFlow(0, 3, -1, Edge{From: 1, To: 3})
	if got != 1 {
		t.Fatalf("flow with single virtual edge = %d, want 1", got)
	}
}

// referenceMaxFlow is a slow Ford–Fulkerson on an explicit capacity matrix
// used to validate the Dinic implementation on random graphs.
func referenceMaxFlow(n int, edges []Edge, s, t int) int {
	cap := make([][]int, n)
	for i := range cap {
		cap[i] = make([]int, n)
	}
	for _, e := range edges {
		cap[e.From][e.To]++
	}
	flow := 0
	for {
		// BFS for an augmenting path.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] < 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if cap[u][v] > 0 && parent[v] < 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] < 0 {
			return flow
		}
		for v := t; v != s; v = parent[v] {
			cap[parent[v]][v]--
			cap[v][parent[v]]++
		}
		flow++
	}
}

func TestMaxFlowAgainstReference(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(10)
		m := r.Intn(4 * n)
		g := NewDigraph(n)
		var edges []Edge
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			mustEdge(t, g, u, v)
			edges = append(edges, Edge{From: u, To: v})
		}
		fs := NewFlowSolver(g)
		s, tt := 0, n-1
		want := referenceMaxFlow(n, edges, s, tt)
		if got := fs.MaxFlow(s, tt, -1); got != want {
			t.Fatalf("trial %d: flow = %d, want %d", trial, got, want)
		}
	}
}

func TestMinCutSide(t *testing.T) {
	t.Parallel()
	// Bottleneck: 0->1 (x2), 1->2 (x1), 2->3 (x2). Min cut is the single
	// 1->2 edge, so the source side is {0,1}.
	g := NewDigraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 2, 3)
	fs := NewFlowSolver(g)
	side, flow := fs.MinCutSide(0, 3)
	if flow != 1 {
		t.Fatalf("cut value = %d, want 1", flow)
	}
	want := []bool{true, true, false, false}
	for i := range want {
		if side[i] != want[i] {
			t.Fatalf("side[%d] = %v, want %v", i, side[i], want[i])
		}
	}
}

func TestConnectivityAll(t *testing.T) {
	t.Parallel()
	g := NewDigraph(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	fs := NewFlowSolver(g)
	got := fs.ConnectivityAll(0, -1)
	want := []int{0, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("λ(0,%d) = %d, want %d", i, got[i], want[i])
		}
	}
	capped := fs.ConnectivityAll(0, 1)
	if capped[1] != 1 {
		t.Fatalf("capped λ(0,1) = %d, want 1", capped[1])
	}
}

func TestArborescencePackingSimple(t *testing.T) {
	t.Parallel()
	// Complete digraph on 4 nodes has λ(r,v) = 3 for all v: pack 3.
	g := NewDigraph(4)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				mustEdge(t, g, u, v)
			}
		}
	}
	if got := MaxPackingSize(g, 0); got != 3 {
		t.Fatalf("MaxPackingSize = %d, want 3", got)
	}
	packs, err := EdgeDisjointArborescences(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(packs) != 3 {
		t.Fatalf("got %d arborescences, want 3", len(packs))
	}
	if err := VerifyArborescences(g, packs); err != nil {
		t.Fatal(err)
	}
}

func TestArborescencePackingInsufficient(t *testing.T) {
	t.Parallel()
	g := NewDigraph(3)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	if _, err := EdgeDisjointArborescences(g, 0, 2); !errors.Is(err, ErrNotConnected) {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
	// k = 1 on a path works: the path itself.
	packs, err := EdgeDisjointArborescences(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyArborescences(g, packs); err != nil {
		t.Fatal(err)
	}
}

func TestArborescencePackingRandomGraphs(t *testing.T) {
	t.Parallel()
	// Random layered DAGs shaped like curtain overlays: root with k
	// outgoing threads, each later node picks d random predecessors.
	// Edmonds' theorem says we can always pack min-connectivity many
	// arborescences; verify the construction delivers them.
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(8)
		d := 2 + r.Intn(2)
		g := NewDigraph(n)
		for v := 1; v < n; v++ {
			for j := 0; j < d; j++ {
				g.AddEdge(r.Intn(v), v) //nolint:errcheck // valid by construction
			}
		}
		k := MaxPackingSize(g, 0)
		if k == 0 {
			continue
		}
		packs, err := EdgeDisjointArborescences(g, 0, k)
		if err != nil {
			t.Fatalf("trial %d (n=%d d=%d k=%d): %v", trial, n, d, k, err)
		}
		if err := VerifyArborescences(g, packs); err != nil {
			t.Fatalf("trial %d: invalid packing: %v", trial, err)
		}
	}
}

func TestVerifyArborescencesRejectsBad(t *testing.T) {
	t.Parallel()
	g := NewDigraph(3)
	e1 := mustEdge(t, g, 0, 1)
	e2 := mustEdge(t, g, 1, 2)
	mustEdge(t, g, 0, 2)
	// Edge reuse across arborescences.
	bad := []Arborescence{
		{Root: 0, Edges: []int{e1, e2}},
		{Root: 0, Edges: []int{e1, e2}},
	}
	if err := VerifyArborescences(g, bad); err == nil {
		t.Error("edge reuse not detected")
	}
	// Missing node coverage.
	bad2 := []Arborescence{{Root: 0, Edges: []int{e1}}}
	if err := VerifyArborescences(g, bad2); err == nil {
		t.Error("non-spanning arborescence not detected")
	}
}

func TestCloneIndependence(t *testing.T) {
	t.Parallel()
	g := NewDigraph(2)
	mustEdge(t, g, 0, 1)
	c := g.Clone()
	mustEdge(t, c, 1, 0)
	if g.NumEdges() != 1 {
		t.Fatal("mutating clone changed original")
	}
}

func BenchmarkMaxFlowLayeredDAG(b *testing.B) {
	// Curtain-like DAG: 1000 nodes, d=4 random predecessors each.
	r := rand.New(rand.NewSource(1))
	const n, d = 1000, 4
	g := NewDigraph(n)
	for v := 1; v < n; v++ {
		for j := 0; j < d; j++ {
			g.AddEdge(r.Intn(v), v) //nolint:errcheck
		}
	}
	fs := NewFlowSolver(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.MaxFlow(0, n-1, d)
	}
}

func BenchmarkArborescencePacking(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	const n, d = 24, 3
	g := NewDigraph(n)
	for v := 1; v < n; v++ {
		for j := 0; j < d; j++ {
			g.AddEdge(r.Intn(v), v) //nolint:errcheck
		}
	}
	k := MaxPackingSize(g, 0)
	if k == 0 {
		b.Skip("degenerate random graph")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EdgeDisjointArborescences(g, 0, k); err != nil {
			b.Fatal(err)
		}
	}
}
