package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickMaxFlowMinCutDuality checks, over random graphs, that the flow
// value returned by MaxFlow equals the number of edges crossing the cut
// MinCutSide returns — the max-flow/min-cut theorem, which everything in
// the analysis plane rests on.
func TestQuickMaxFlowMinCutDuality(t *testing.T) {
	t.Parallel()
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%10
		m := int(mRaw) % (4 * n)
		g := NewDigraph(n)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				continue
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return false
			}
		}
		fs := NewFlowSolver(g)
		s, tt := 0, n-1
		flow := fs.MaxFlow(s, tt, -1)
		side, cutFlow := fs.MinCutSide(s, tt)
		if flow != cutFlow {
			t.Logf("flow %d != cut flow %d", flow, cutFlow)
			return false
		}
		// Count edges crossing the cut (source side -> sink side).
		crossing := 0
		for id := 0; id < g.NumEdges(); id++ {
			e := g.Edge(id)
			if side[e.From] && !side[e.To] {
				crossing++
			}
		}
		if crossing != flow {
			t.Logf("crossing %d != flow %d", crossing, flow)
			return false
		}
		// s on the source side, t on the sink side (when flow is finite
		// and they differ).
		return side[s] && !side[tt]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPackingMatchesMinConnectivity checks Edmonds' theorem itself on
// random curtain-shaped DAGs: the constructive packing yields exactly
// MaxPackingSize arborescences and verification accepts them.
func TestQuickPackingMatchesMinConnectivity(t *testing.T) {
	t.Parallel()
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%8
		d := 2
		g := NewDigraph(n)
		for v := 1; v < n; v++ {
			for j := 0; j < d; j++ {
				if _, err := g.AddEdge(r.Intn(v), v); err != nil {
					return false
				}
			}
		}
		k := MaxPackingSize(g, 0)
		if k == 0 {
			return true
		}
		packs, err := EdgeDisjointArborescences(g, 0, k)
		if err != nil {
			t.Logf("packing failed at k=%d: %v", k, err)
			return false
		}
		if len(packs) != k {
			return false
		}
		return VerifyArborescences(g, packs) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
