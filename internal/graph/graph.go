// Package graph provides the directed-graph algorithms the analysis plane
// needs: unit-capacity max-flow (edge connectivity), BFS depths, and
// Edmonds' edge-disjoint arborescence packing.
//
// The paper's quantities are all graph-theoretic: a node's achievable
// broadcast rate equals its edge connectivity from the server (network
// coding theorem, §4), the defect B^t of a d-tuple of hanging threads is a
// min-cut to a virtual sink, and the §1 "theoretical but impractical"
// baseline is Edmonds' packing of d edge-disjoint spanning arborescences.
package graph

import (
	"errors"
	"fmt"
)

// Edge is a directed edge u -> v.
type Edge struct {
	From int
	To   int
}

// Digraph is a directed multigraph on nodes 0..N-1 with unit-capacity
// edges. It is append-only: nodes and edges can be added, never removed
// (callers rebuild snapshots instead; topology snapshots are cheap
// relative to the flow computations run on them).
type Digraph struct {
	n     int
	edges []Edge
	out   [][]int32 // node -> indices into edges
	in    [][]int32
}

// NewDigraph returns a graph with n nodes and no edges.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{n: n, out: make([][]int32, n), in: make([][]int32, n)}
}

// AddNode appends a node and returns its index.
func (g *Digraph) AddNode() int {
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.n++
	return g.n - 1
}

// AddEdge appends a unit-capacity edge u -> v and returns its index.
// Parallel edges are allowed (two threads can connect the same node pair);
// self-loops are rejected.
func (g *Digraph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return 0, fmt.Errorf("graph: self-loop at %d", u)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{From: u, To: v})
	g.out[u] = append(g.out[u], int32(id))
	g.in[v] = append(g.in[v], int32(id))
	return id, nil
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return g.n }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int { return len(g.edges) }

// Edge returns edge id.
func (g *Digraph) Edge(id int) Edge { return g.edges[id] }

// OutDegree returns the out-degree of u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the in-degree of u.
func (g *Digraph) InDegree(u int) int { return len(g.in[u]) }

// OutEdges returns the edge ids leaving u. The slice aliases internal
// state; callers must not modify it.
func (g *Digraph) OutEdges(u int) []int32 { return g.out[u] }

// InEdges returns the edge ids entering u. The slice aliases internal
// state; callers must not modify it.
func (g *Digraph) InEdges(u int) []int32 { return g.in[u] }

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	for u := 0; u < g.n; u++ {
		c.out[u] = append([]int32(nil), g.out[u]...)
		c.in[u] = append([]int32(nil), g.in[u]...)
	}
	return c
}

// Depths returns BFS hop distances from s; unreachable nodes get -1.
// It is the delay metric of §6 (each overlay hop adds one unit of delay).
func (g *Digraph) Depths(s int) []int {
	if s < 0 || s >= g.n {
		panic(fmt.Sprintf("graph: source %d out of range", s))
	}
	depth := make([]int, g.n)
	for i := range depth {
		depth[i] = -1
	}
	depth[s] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, s)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, eid := range g.out[u] {
			v := g.edges[eid].To
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// Reachable returns the set of nodes reachable from s as a boolean mask.
func (g *Digraph) Reachable(s int) []bool {
	d := g.Depths(s)
	mask := make([]bool, g.n)
	for i, x := range d {
		mask[i] = x >= 0
	}
	return mask
}

// ErrNotConnected is returned by arborescence packing when the required
// connectivity is missing.
var ErrNotConnected = errors.New("graph: insufficient connectivity from root")
