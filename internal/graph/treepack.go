package graph

import "fmt"

// Arborescence is a spanning arborescence rooted at the packing root,
// represented as the list of edge ids used. Every non-root node has
// exactly one incoming edge in the list.
type Arborescence struct {
	Root  int
	Edges []int
}

// ParentOf returns, for each node, the edge id entering it in the
// arborescence, or -1 for the root (and for nodes outside the packing).
func (a *Arborescence) ParentOf(g *Digraph, n int) []int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	for _, eid := range a.Edges {
		parent[g.Edge(eid).To] = eid
	}
	return parent
}

// EdgeDisjointArborescences packs k edge-disjoint spanning arborescences
// rooted at root, implementing the constructive form of Edmonds' theorem
// (the §1 "theoretically optimal but impractical" multicast baseline):
// k such arborescences exist iff every node has edge connectivity >= k
// from root. It returns ErrNotConnected when the hypothesis fails.
//
// The construction is the classic safe-edge argument: arborescences are
// grown one at a time; an edge (u,v) with u in the current tree T and v
// outside is added only if removing it keeps the residual graph
// (k-i)-connected from root to every node still outside T. Edmonds'
// theorem guarantees a safe edge always exists. Each safety test is a
// batch of min-cut computations, so the algorithm is O(k·V²·E·d) — fine
// for the analysis plane's snapshot sizes, and exactly why the paper calls
// the approach impractical for live repair.
func EdgeDisjointArborescences(g *Digraph, root, k int) ([]Arborescence, error) {
	n := g.NumNodes()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("graph: root %d out of range [0,%d)", root, n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("graph: nonpositive packing size %d", k)
	}
	// Verify the hypothesis up front for a clean error.
	fs := NewFlowSolver(g)
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		if c := fs.MaxFlow(root, v, k); c < k {
			return nil, fmt.Errorf("%w: node %d has connectivity %d < %d", ErrNotConnected, v, c, k)
		}
	}

	removed := make([]bool, g.NumEdges())
	packs := make([]Arborescence, 0, k)
	for i := 0; i < k; i++ {
		need := k - i - 1 // connectivity to preserve after this arborescence
		arb, err := growArborescence(g, root, removed, need)
		if err != nil {
			return nil, err
		}
		for _, eid := range arb.Edges {
			removed[eid] = true
		}
		packs = append(packs, arb)
	}
	return packs, nil
}

// growArborescence builds one spanning arborescence in g minus the removed
// edges, keeping the residual graph `need`-connected from root to every
// node outside the growing tree.
func growArborescence(g *Digraph, root int, removed []bool, need int) (Arborescence, error) {
	n := g.NumNodes()
	inTree := make([]bool, n)
	inTree[root] = true
	treeSize := 1
	arb := Arborescence{Root: root}

	for treeSize < n {
		eid, err := findSafeEdge(g, root, removed, inTree, need)
		if err != nil {
			return Arborescence{}, err
		}
		arb.Edges = append(arb.Edges, eid)
		removed[eid] = true // tentatively consumed; caller re-marks
		inTree[g.Edge(eid).To] = true
		treeSize++
	}
	// The caller re-marks; undo our tentative marks so the contract is
	// "removed is unchanged on return" and the caller owns the update.
	for _, eid := range arb.Edges {
		removed[eid] = false
	}
	return arb, nil
}

// findSafeEdge scans frontier edges (u in tree, v outside) and returns the
// first one whose removal keeps every outside node `need`-connected from
// root in the residual graph.
func findSafeEdge(g *Digraph, root int, removed, inTree []bool, need int) (int, error) {
	for u := 0; u < g.NumNodes(); u++ {
		if !inTree[u] {
			continue
		}
		for _, id := range g.OutEdges(u) {
			eid := int(id)
			if removed[eid] {
				continue
			}
			v := g.Edge(eid).To
			if inTree[v] {
				continue
			}
			if need == 0 || edgeIsSafe(g, root, removed, eid, need) {
				return eid, nil
			}
		}
	}
	return 0, fmt.Errorf("graph: no safe edge found (tree incomplete): %w", ErrNotConnected)
}

// edgeIsSafe tests whether removing edge eid keeps λ(root, w) >= need for
// EVERY node w (tree nodes included). This is the invariant in Lovász's
// proof of Edmonds' theorem — "λ_{G−E(T)}(r,v) ≥ k−1 for each v ∈ V" — and
// the all-nodes quantifier matters: checking only nodes outside the tree
// lets an arborescence consume too many of the root's out-edges, breaking
// the induction for the next arborescence.
func edgeIsSafe(g *Digraph, root int, removed []bool, eid, need int) bool {
	sub := NewDigraph(g.NumNodes())
	for id, e := range g.edges {
		if removed[id] || id == eid {
			continue
		}
		if _, err := sub.AddEdge(e.From, e.To); err != nil {
			panic(err) // edges come from a valid graph
		}
	}
	fs := NewFlowSolver(sub)
	for w := 0; w < g.NumNodes(); w++ {
		if w == root {
			continue
		}
		if fs.MaxFlow(root, w, need) < need {
			return false
		}
	}
	return true
}

// MaxPackingSize returns the largest k for which k edge-disjoint spanning
// arborescences rooted at root exist: min over nodes of λ(root, v)
// (Edmonds' theorem). Nodes unreachable from root give 0.
func MaxPackingSize(g *Digraph, root int) int {
	fs := NewFlowSolver(g)
	best := -1
	for v := 0; v < g.NumNodes(); v++ {
		if v == root {
			continue
		}
		c := fs.MaxFlow(root, v, -1)
		if best < 0 || c < best {
			best = c
		}
		if best == 0 {
			return 0
		}
	}
	if best < 0 {
		return 0 // single-node graph: no receivers
	}
	return best
}

// VerifyArborescences checks that the packing is valid: arborescences are
// pairwise edge-disjoint, each spans all nodes, and each non-root node has
// exactly one parent per arborescence.
func VerifyArborescences(g *Digraph, packs []Arborescence) error {
	used := make(map[int]bool, len(packs)*g.NumNodes())
	for pi, arb := range packs {
		indeg := make([]int, g.NumNodes())
		sub := NewDigraph(g.NumNodes())
		for _, eid := range arb.Edges {
			if used[eid] {
				return fmt.Errorf("graph: edge %d reused across arborescences", eid)
			}
			used[eid] = true
			e := g.Edge(eid)
			indeg[e.To]++
			if _, err := sub.AddEdge(e.From, e.To); err != nil {
				return err
			}
		}
		depths := sub.Depths(arb.Root)
		for v := 0; v < g.NumNodes(); v++ {
			if v == arb.Root {
				if indeg[v] != 0 {
					return fmt.Errorf("graph: arborescence %d has edge into root", pi)
				}
				continue
			}
			if indeg[v] != 1 {
				return fmt.Errorf("graph: arborescence %d: node %d in-degree %d", pi, v, indeg[v])
			}
			if depths[v] < 0 {
				return fmt.Errorf("graph: arborescence %d does not reach node %d", pi, v)
			}
		}
	}
	return nil
}
