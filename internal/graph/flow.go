package graph

import "fmt"

// FlowSolver computes unit-capacity max-flows on a fixed graph with
// reusable buffers, so that the defect process (which runs thousands of
// small flow queries per experiment step) does not thrash the allocator.
//
// The solver uses Dinic's algorithm. Edge capacities are 1; callers that
// need a multi-edge capacity add parallel edges. A query may supply extra
// temporary edges (used to attach virtual sinks for d-tuple connectivity)
// and a flow limit for early exit (connectivity is capped at d, so pushing
// beyond d units is wasted work).
type FlowSolver struct {
	g *Digraph
	// residual state, sized n nodes and m' = 2*(m+extra) directed arcs:
	// arc 2i is edge i forward, arc 2i+1 its reverse.
	head  []int32 // arc -> destination node
	next  []int32 // arc -> next arc index in adjacency list, -1 end
	first []int32 // node -> first arc index, -1 end
	cap   []int8  // arc -> residual capacity (0 or 1)
	level []int32
	iter  []int32
	queue []int32
	base  int // number of arcs belonging to the base graph
}

// NewFlowSolver prepares a solver for g. The graph must not gain nodes or
// edges afterwards; build a new solver per topology snapshot.
func NewFlowSolver(g *Digraph) *FlowSolver {
	fs := &FlowSolver{g: g}
	n, m := g.NumNodes(), g.NumEdges()
	fs.first = make([]int32, n)
	fs.level = make([]int32, n)
	fs.iter = make([]int32, n)
	fs.queue = make([]int32, 0, n)
	fs.head = make([]int32, 0, 2*m+16)
	fs.next = make([]int32, 0, 2*m+16)
	fs.cap = make([]int8, 0, 2*m+16)
	for i := range fs.first {
		fs.first[i] = -1
	}
	for _, e := range g.edges {
		fs.addArcPair(e.From, e.To)
	}
	fs.base = len(fs.head)
	return fs
}

func (fs *FlowSolver) addArcPair(u, v int) {
	fs.head = append(fs.head, int32(v), int32(u))
	fs.next = append(fs.next, fs.first[u], fs.first[v])
	fs.cap = append(fs.cap, 1, 0)
	fs.first[u] = int32(len(fs.head) - 2)
	fs.first[v] = int32(len(fs.head) - 1)
}

// removeExtra rolls the arc arrays back to the base graph. Extra arcs were
// appended last and each adjacency list is a stack, so popping them off the
// front of the affected lists restores the original heads.
func (fs *FlowSolver) removeExtra(extra []Edge) {
	// Arcs were pushed in order; pop in reverse.
	for i := len(extra) - 1; i >= 0; i-- {
		e := extra[i]
		// Reverse arc was pushed second: it heads fs.first[e.To].
		fs.first[e.To] = fs.next[fs.first[e.To]]
		fs.first[e.From] = fs.next[fs.first[e.From]]
	}
	fs.head = fs.head[:fs.base]
	fs.next = fs.next[:fs.base]
	fs.cap = fs.cap[:fs.base]
}

// reset restores all residual capacities to their initial values.
func (fs *FlowSolver) reset() {
	for i := 0; i < len(fs.cap); i += 2 {
		fs.cap[i] = 1
		fs.cap[i+1] = 0
	}
}

// MaxFlow returns the s-t max flow, stopping early once limit is reached
// (pass a negative limit for no cap). extra lists temporary unit edges
// appended for this query only, e.g. thread-bottom -> virtual-sink edges.
func (fs *FlowSolver) MaxFlow(s, t int, limit int, extra ...Edge) int {
	n := fs.g.NumNodes()
	if s < 0 || s >= n || t < 0 || t >= n {
		panic(fmt.Sprintf("graph: flow endpoints (%d,%d) out of range [0,%d)", s, t, n))
	}
	if s == t {
		return 0
	}
	for _, e := range extra {
		fs.addArcPair(e.From, e.To)
	}
	fs.reset()
	flow := 0
	for limit < 0 || flow < limit {
		if !fs.bfs(s, t) {
			break
		}
		copy(fs.iter, fs.first)
		for limit < 0 || flow < limit {
			if fs.dfs(s, t) == 0 {
				break
			}
			flow++
		}
	}
	if len(extra) > 0 {
		fs.removeExtra(extra)
	}
	return flow
}

// bfs builds the level graph; returns false when t is unreachable.
func (fs *FlowSolver) bfs(s, t int) bool {
	for i := range fs.level {
		fs.level[i] = -1
	}
	fs.level[s] = 0
	fs.queue = fs.queue[:0]
	fs.queue = append(fs.queue, int32(s))
	for qi := 0; qi < len(fs.queue); qi++ {
		u := fs.queue[qi]
		for a := fs.first[u]; a >= 0; a = fs.next[a] {
			if fs.cap[a] == 0 {
				continue
			}
			v := fs.head[a]
			if fs.level[v] < 0 {
				fs.level[v] = fs.level[u] + 1
				fs.queue = append(fs.queue, v)
			}
		}
	}
	return fs.level[t] >= 0
}

// dfs pushes one unit of flow along the level graph; returns the amount
// pushed (0 or 1).
func (fs *FlowSolver) dfs(u, t int) int {
	if u == t {
		return 1
	}
	for ; fs.iter[u] >= 0; fs.iter[u] = fs.next[fs.iter[u]] {
		a := fs.iter[u]
		v := fs.head[a]
		if fs.cap[a] == 0 || fs.level[v] != fs.level[u]+1 {
			continue
		}
		if fs.dfs(int(v), t) == 1 {
			fs.cap[a]--
			fs.cap[a^1]++
			return 1
		}
	}
	return 0
}

// MinCutSide computes an s-t max flow and returns the source side of a
// minimum s-t cut as a boolean mask, along with the cut value. extra edges
// are included in the network for this query only.
func (fs *FlowSolver) MinCutSide(s, t int, extra ...Edge) ([]bool, int) {
	for _, e := range extra {
		fs.addArcPair(e.From, e.To)
	}
	fs.reset()
	flow := 0
	for fs.bfs(s, t) {
		copy(fs.iter, fs.first)
		for fs.dfs(s, t) == 1 {
			flow++
		}
	}
	// After the final failed BFS, level >= 0 marks the source side of a
	// min cut in the residual network.
	side := make([]bool, fs.g.NumNodes())
	for i, l := range fs.level {
		side[i] = l >= 0
	}
	if len(extra) > 0 {
		fs.removeExtra(extra)
	}
	return side, flow
}

// EdgeConnectivity returns the number of edge-disjoint s->t paths,
// computed as a unit-capacity max flow with no limit.
func (fs *FlowSolver) EdgeConnectivity(s, t int) int {
	return fs.MaxFlow(s, t, -1)
}

// ConnectivityAll returns λ(s, v) for every node v (with λ(s,s) = 0 by
// convention) capped at limit when limit >= 0.
func (fs *FlowSolver) ConnectivityAll(s, limit int) []int {
	out := make([]int, fs.g.NumNodes())
	for v := range out {
		if v == s {
			continue
		}
		out[v] = fs.MaxFlow(s, v, limit)
	}
	return out
}
