package ncast

import (
	"context"
	"encoding/json"
	"regexp"
	"sync"
	"testing"
	"time"

	"ncast/internal/obs"
)

// metricNameRE is the repository's metric naming contract: every exported
// series is ncast_-prefixed lowercase snake case, so dashboards can select
// the whole fleet with one prefix match.
var metricNameRE = regexp.MustCompile(`^ncast_[a-z0-9_]+$`)

// TestMetricNameLint instantiates every metrics bundle the codebase
// defines and lints each registered family name against the naming
// contract. New bundles automatically fall under the lint because they
// register into the same registry.
func TestMetricNameLint(t *testing.T) {
	t.Parallel()
	reg := obs.NewRegistry()
	obs.NewTrackerMetrics(reg)
	obs.NewSourceMetrics(reg)
	nm := obs.NewNodeMetrics(reg, "lint-node")
	obs.NewTransportMetrics(reg, "lint-ep")
	obs.NewTraceMetrics(reg)
	obs.NewLinkMetrics(reg)
	obs.NewRuntimeMetrics(reg)
	// The lifecycle tracker registers the decode-delay and overhead
	// histograms lazily on the first decode; force both.
	gt := obs.NewGenTracker("lint-node", 1, nm, nil)
	gt.Observe(0, time.Now().Add(-time.Millisecond).UnixNano(), 1)

	points := reg.Snapshot()
	if len(points) == 0 {
		t.Fatal("no metrics registered")
	}
	seen := map[string]bool{}
	for _, p := range points {
		if seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		if !metricNameRE.MatchString(p.Name) {
			t.Errorf("metric %q violates %s", p.Name, metricNameRE)
		}
	}
	// Spot-check that the new telemetry series are among them.
	for _, want := range []string{
		"ncast_node_decode_delay_nanos",
		"ncast_node_coding_overhead_ratio",
		"ncast_tracker_stats_reports_total",
		"ncast_trace_hop_depth",
		"ncast_trace_innovation_ratio",
		"ncast_link_loss_permille",
		"ncast_link_rtt_nanos",
		"ncast_runtime_heap_bytes",
		"ncast_runtime_goroutines",
	} {
		if !seen[want] {
			t.Errorf("missing series %s", want)
		}
	}
}

// TestSessionMetricNames runs a real session and lints every live series —
// catches names built at runtime that the static bundle sweep can't see.
func TestSessionMetricNames(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	sess, err := NewSession(testContent(4*8*64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := sess.AddClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, p := range sess.Snapshot().Metrics {
		if !metricNameRE.MatchString(p.Name) {
			t.Errorf("metric %q violates %s", p.Name, metricNameRE)
		}
	}
}

// TestTraceLive runs a real broadcast with tracing on every generation
// and checks the end-to-end pipeline: traced frames propagate through
// recoding nodes, hop spans ride the stats reports, and the tracker
// assembles a multi-level dissemination tree with per-depth innovation.
func TestTraceLive(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.K, cfg.D = 4, 2 // narrow curtain so the overlay grows real depth
	cfg.TraceRate = 1
	cfg.StatsInterval = 100 * time.Millisecond
	sess, err := NewSession(testContent(4*8*64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var clients []*Client
	for i := 0; i < 8; i++ {
		c, err := sess.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Hop spans ride the periodic stats reports; poll until multi-hop
	// structure shows up. With 8 nodes on 4 threads at degree 2, some node
	// must sit below another, so depth > 1 is guaranteed by construction.
	var snap obs.TraceSnapshot
	waitFor(t, 60*time.Second, "multi-hop trace structure to assemble", func() bool {
		snap = sess.TraceSnapshot()
		return snap.SampledGenerations > 0 && snap.MaxHopDepth > 1
	})
	if len(snap.Depths) < 2 {
		t.Fatalf("hop-depth distribution is degenerate: %+v", snap.Depths)
	}
	for _, d := range snap.Depths {
		if d.Received <= 0 || d.Nodes <= 0 {
			t.Fatalf("empty depth row %+v", d)
		}
		if d.InnovationPermille < 0 || d.InnovationPermille > 1000 {
			t.Fatalf("innovation ratio out of range: %+v", d)
		}
	}
	// Every assembled generation must have a coherent tree: levels sorted,
	// depths positive, worst path no earlier than the emit stamp.
	for _, g := range snap.Generations {
		if g.TraceID == 0 || len(g.Tree) == 0 {
			t.Fatalf("degenerate generation %+v", g)
		}
		prev := 0
		for _, lvl := range g.Tree {
			if lvl.Depth <= prev || len(lvl.Nodes) == 0 {
				t.Fatalf("generation %d has malformed tree %+v", g.Gen, g.Tree)
			}
			prev = lvl.Depth
		}
		if g.WorstPathNanos < 0 {
			t.Fatalf("generation %d negative worst path", g.Gen)
		}
	}
	// The cluster view carries the trace digest.
	if cs := sess.ClusterSnapshot(); cs.Trace == nil || cs.Trace.MaxHopDepth < 2 {
		t.Fatalf("cluster snapshot trace digest = %+v", cs.Trace)
	}
	// The fleet histograms saw traced traffic.
	osnap := sess.Snapshot()
	if p := osnap.Metric("ncast_trace_hop_records_total"); p == nil || p.Value <= 0 {
		t.Fatalf("hop-records counter = %+v", p)
	}
}

// TestTraceDisabledByDefault pins the zero-cost default: with TraceRate
// unset no hop spans are recorded, no trace state reaches the tracker, and
// the trace view stays empty.
func TestTraceDisabledByDefault(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.StatsInterval = 100 * time.Millisecond
	sess, err := NewSession(testContent(2*8*64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := sess.AddClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	snap := sess.TraceSnapshot()
	if snap.SampledGenerations != 0 || len(snap.Generations) != 0 {
		t.Fatalf("untraced session assembled generations: %+v", snap)
	}
	if cs := sess.ClusterSnapshot(); cs.Trace != nil {
		t.Fatalf("untraced cluster snapshot carries a trace digest: %+v", cs.Trace)
	}
}

// TestTimelineEvents drives a session with a generation-event sink — the
// feed behind ncast-sim -timeline — and checks the stream is valid JSONL
// with monotone per-generation phase transitions at every node.
func TestTimelineEvents(t *testing.T) {
	t.Parallel()
	var (
		mu     sync.Mutex
		events []GenEvent
	)
	cfg := testConfig()
	cfg.StatsInterval = 100 * time.Millisecond
	sess, err := NewSession(testContent(4*8*64), cfg, WithGenEvents(func(ev GenEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := sess.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no lifecycle events")
	}
	order := map[string]int{"first_packet": 0, "rank25": 1, "rank50": 2, "rank75": 3, "decoded": 4}
	type key struct {
		node string
		gen  uint32
	}
	last := map[key]int{}
	sawDecoded := map[key]bool{}
	for _, ev := range events {
		// Each event must survive a JSON round trip (the JSONL contract).
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("marshal %+v: %v", ev, err)
		}
		var back GenEvent
		if err := json.Unmarshal(raw, &back); err != nil || back.Phase != ev.Phase {
			t.Fatalf("round trip %s: %v", raw, err)
		}
		rank, ok := order[ev.Phase]
		if !ok {
			t.Fatalf("unknown phase %q", ev.Phase)
		}
		k := key{node: ev.Node, gen: ev.Gen}
		if prev, seen := last[k]; seen && rank <= prev {
			t.Fatalf("node %s generation %d: phase %s after rank %d", ev.Node, ev.Gen, ev.Phase, prev)
		}
		last[k] = rank
		if ev.Phase == "decoded" {
			sawDecoded[k] = true
			if ev.DelayNanos <= 0 {
				t.Errorf("node %s generation %d decoded without delay", ev.Node, ev.Gen)
			}
			if ev.OverheadPermille < 1000 {
				t.Errorf("node %s generation %d overhead %d", ev.Node, ev.Gen, ev.OverheadPermille)
			}
		}
	}
	// Every client decoded every generation, so every (node, generation)
	// stream must terminate in a decoded event.
	gens := 4
	if want := len(clients) * gens; len(sawDecoded) != want {
		t.Fatalf("decoded streams = %d, want %d", len(sawDecoded), want)
	}
}

// TestLossyPeerLinkDrill is the link-telemetry acceptance drill: in a
// six-client datagram session with 10% one-way inbound loss injected on
// exactly one client (plus a 1ms receive delay), the fleet link matrix
// must localize the fault — the lossy client's aggregated inbound loss
// estimate converges within ±30‰ of the injected rate, the cluster
// digest names it as the worst peer, and its RTT EWMAs reflect the
// injected delay.
func TestLossyPeerLinkDrill(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.StatsInterval = 100 * time.Millisecond
	// Slow the pump so the serialized 1ms receive delay on the faulty
	// client stays well under the inbound inter-frame spacing.
	cfg.SourceInterval = 20 * time.Millisecond
	WithDatagramData()(&cfg)
	sess, err := NewSession(testContent(4*8*64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const injected = 0.10
	lossy, err := sess.AddClient(ctx,
		WithClientDataLoss(injected),
		WithClientDataDelay(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	for i := 0; i < 5; i++ {
		c, err := sess.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range append(clients, lossy) {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// The source keeps pumping after decode, so the estimators keep
	// accumulating samples. Poll until the matrix converges on the fault.
	lossyID := lossy.ID()
	var lastSnap obs.LinkSnapshot
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("last link snapshot for lossy peer %d: %+v", lossyID, lastSnap)
		}
	})
	waitFor(t, 60*time.Second, "link matrix to localize the lossy peer", func() bool {
		snap := sess.LinkSnapshot()
		lastSnap = snap
		var expected, received uint64
		maxRTT := int64(0)
		for _, e := range snap.Edges {
			if e.Reporter != lossyID {
				continue
			}
			expected += e.Expected
			received += e.Received
			if e.RTTEwmaNanos > maxRTT {
				maxRTT = e.RTTEwmaNanos
			}
		}
		if expected < 200 {
			return false
		}
		loss := float64(expected-received) / float64(expected)
		digest := sess.ClusterSnapshot().Links
		if loss >= injected-0.03 && loss <= injected+0.03 &&
			digest != nil && digest.WorstPeerID == lossyID &&
			maxRTT >= int64(900*time.Microsecond) {
			if digest.WorstPeerLossPermille < 50 {
				t.Fatalf("digest loss estimate %d‰ too low for a 10%% lossy peer", digest.WorstPeerLossPermille)
			}
			return true
		}
		return false
	})
}

// TestClusterSnapshotLive checks the session-level aggregation end to end:
// after a full decode, every client appears complete in the cluster view.
func TestClusterSnapshotLive(t *testing.T) {
	t.Parallel()
	cfg := testConfig()
	cfg.StatsInterval = 80 * time.Millisecond
	sess, err := NewSession(testContent(2*8*64), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var clients []*Client
	for i := 0; i < 2; i++ {
		c, err := sess.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for _, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	var snap obs.ClusterSnapshot
	waitFor(t, 10*time.Second, "every client complete in the cluster view", func() bool {
		snap = sess.ClusterSnapshot()
		done := len(snap.Nodes) == len(clients)
		for _, n := range snap.Nodes {
			if !n.Complete {
				done = false
			}
		}
		return done
	})
	for _, c := range clients {
		if snap.Node(c.ID()) == nil {
			t.Fatalf("client %d missing from cluster view", c.ID())
		}
	}
}
