package ncast

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestSwarmSurvivesSourceDeparture exercises the §6 download scenario:
// once the content has reached part of the population, the server's data
// pump disconnects; the swarm — peers re-mixing and forwarding among
// themselves, with the tracker still brokering joins — must deliver the
// content to everyone who arrives afterwards.
func TestSwarmSurvivesSourceDeparture(t *testing.T) {
	t.Parallel()
	content := testContent(1500)
	cfg := testConfig()
	s, err := NewSession(content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Seed generation: 4 peers download directly from the source.
	var seeds []*Client
	for i := 0; i < 4; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, c)
	}
	for _, c := range seeds {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("seed stalled: %v", err)
		}
	}

	// The server disconnects its data plane.
	s.DisconnectSource()

	// Late arrivals must complete purely from the swarm.
	var late []*Client
	for i := 0; i < 3; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		late = append(late, c)
	}
	for i, c := range late {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("late peer %d stalled at %.2f with source disconnected: %v",
				i, c.Progress(), err)
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("late peer %d content mismatch", i)
		}
	}
}

// TestEntropyAttackerThroughPublicAPI wires the Byzantine behavior through
// the façade: a session where an entropy attacker joins between honest
// peers must not stop honest peers that have other paths (k is large, so
// the attacker owns few threads).
func TestEntropyAttackerThroughPublicAPI(t *testing.T) {
	t.Parallel()
	content := testContent(1000)
	cfg := testConfig() // k=8, d=2: attacker owns 2 of 8 threads
	s, err := NewSession(content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first, err := s.AddClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddClient(ctx, WithBehavior(BehaviorEntropyAttacker)); err != nil {
		t.Fatal(err)
	}
	victim, err := s.AddClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker decodes (it is a consumer too) and honest peers with
	// alternative thread paths complete despite the poisoned streams:
	// with k=8 and d=2 the victim's two threads hit the attacker with
	// probability well below 1, and the min-cut argument says any two
	// honest paths suffice. If the victim happens to sit fully behind the
	// attacker it will stall — accept either completion or visible
	// starvation, but require the FIRST peer (joined before the attacker)
	// to always finish.
	if err := first.Wait(ctx); err != nil {
		t.Fatalf("pre-attacker peer stalled: %v", err)
	}
	select {
	case <-victim.Completed():
		got, err := victim.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatal("victim decoded wrong bytes")
		}
	case <-time.After(10 * time.Second):
		if victim.Progress() >= 1 {
			t.Fatal("victim at full rank but not complete")
		}
		t.Logf("victim starved behind entropy attacker at %.2f (expected when both threads pass the attacker)", victim.Progress())
	}
}

// TestLayeredBroadcastEndToEnd drives §5 priority layering through the full
// stack: a layered source, recoding relays, and layer-aware clients.
func TestLayeredBroadcastEndToEnd(t *testing.T) {
	t.Parallel()
	content := testContent(2048)
	cfg := testConfig()
	cfg.LayerWeights = []float64{4, 2, 1} // base layer gets 4/7 of the stream
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(content, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var clients []*Client
	for i := 0; i < 4; i++ {
		c, err := s.AddClient(ctx)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			t.Fatalf("client %d stalled at %.2f: %v", i, c.Progress(), err)
		}
		got, err := c.Content()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("client %d layered content mismatch", i)
		}
		if c.CompletedLayers() != 3 {
			t.Fatalf("client %d layers = %d, want 3", i, c.CompletedLayers())
		}
		// Per-layer extraction matches the slabs.
		per := (len(content) + 2) / 3
		for l := 0; l < 3; l++ {
			end := (l + 1) * per
			if end > len(content) {
				end = len(content)
			}
			lb, err := c.Layer(l)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(lb, content[l*per:end]) {
				t.Fatalf("client %d layer %d mismatch", i, l)
			}
		}
	}
	// Layer access on a flat session errors.
	flat, err := NewSession(content, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	fc, err := flat.AddClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Layer(0); err == nil {
		t.Fatal("Layer on flat session succeeded")
	}
}
