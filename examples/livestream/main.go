// Livestream: synchronous broadcast under churn. Peers join and leave
// continuously, some crash without a good-bye, and the overlay's repair
// protocol (children complain, the tracker splices the failed row out of
// the matrix M) keeps everyone else decoding — the §2/§3 lifecycle in
// motion. The in-memory fabric injects 2% frame loss and 1 ms latency to
// play the role of congested residential links (ergodic failures).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncast"
)

func main() {
	content := make([]byte, 128<<10)
	rand.New(rand.NewSource(7)).Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = 12, 3
	cfg.ComplaintTimeout = 300 * time.Millisecond
	session, err := ncast.NewSession(content, cfg,
		ncast.WithLoss(0.02),
		ncast.WithLatency(time.Millisecond),
		ncast.WithNetworkSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(1))

	// Seed audience.
	var audience []*ncast.Client
	for i := 0; i < 12; i++ {
		c, err := session.AddClient(ctx)
		if err != nil {
			log.Fatal(err)
		}
		audience = append(audience, c)
	}

	// Churn: 30 events of join / graceful leave / crash.
	joins, leaves, crashes := 0, 0, 0
	for ev := 0; ev < 30; ev++ {
		switch r := rng.Float64(); {
		case r < 0.5 || len(audience) < 4:
			c, err := session.AddClient(ctx)
			if err != nil {
				log.Fatal(err)
			}
			audience = append(audience, c)
			joins++
		case r < 0.8:
			i := rng.Intn(len(audience))
			if err := audience[i].Leave(ctx); err != nil {
				log.Fatalf("leave: %v", err)
			}
			audience = append(audience[:i], audience[i+1:]...)
			leaves++
		default:
			i := rng.Intn(len(audience))
			audience[i].Crash()
			audience = append(audience[:i], audience[i+1:]...)
			crashes++
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("churn applied: %d joins, %d graceful leaves, %d crashes; %d viewers remain\n",
		joins, leaves, crashes, len(audience))

	// Every surviving viewer finishes the stream intact.
	for i, c := range audience {
		if err := c.Wait(ctx); err != nil {
			log.Fatalf("viewer %d stalled at %.1f%%: %v", i, 100*c.Progress(), err)
		}
		got, err := c.Content()
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			log.Fatalf("viewer %d stream corrupted", i)
		}
	}
	// The tracker's matrix M converged to the surviving population: the
	// crashed rows were repaired away by complaints.
	deadline := time.Now().Add(10 * time.Second)
	for session.NumNodes() != len(audience) {
		if time.Now().After(deadline) {
			log.Fatalf("overlay population %d, viewers %d — repairs incomplete",
				session.NumNodes(), len(audience))
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("all %d surviving viewers decoded the full stream; overlay repaired to %d rows\n",
		len(audience), session.NumNodes())
}
