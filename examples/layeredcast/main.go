// Layeredcast: §5 priority-encoded broadcasting. The content is split
// into three priority layers (think: base video resolution plus two
// enhancement layers) and the coded stream is weighted 4:2:1 toward the
// base. A degraded receiver — simulated with a heavily lossy link — still
// completes the base layer first and can "play" at reduced resolution
// while the enhancement layers trickle in: graceful degradation instead
// of the all-or-nothing cliff of unlayered erasure schemes.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncast"
)

func main() {
	content := make([]byte, 96<<10)
	rand.New(rand.NewSource(21)).Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = 12, 3
	cfg.LayerWeights = []float64{4, 2, 1}
	session, err := ncast.NewSession(content, cfg,
		ncast.WithLoss(0.15), // a rough link: 15% of frames vanish
		ncast.WithNetworkSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	viewer, err := session.AddClient(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// Watch the layers light up in priority order.
	lastLayers := -1
	layerAt := make([]time.Duration, 0, 3)
	start := time.Now()
	for viewer.CompletedLayers() < 3 {
		if l := viewer.CompletedLayers(); l != lastLayers {
			if l > 0 {
				layerAt = append(layerAt, time.Since(start))
				fmt.Printf("t=%8v  playable resolution: %d/3 layers (progress %.0f%%)\n",
					time.Since(start).Round(time.Millisecond), l, 100*viewer.Progress())
			}
			lastLayers = l
		}
		select {
		case <-ctx.Done():
			log.Fatalf("stalled at %d layers, %.0f%%", viewer.CompletedLayers(), 100*viewer.Progress())
		case <-time.After(5 * time.Millisecond):
		}
	}
	layerAt = append(layerAt, time.Since(start))
	fmt.Printf("t=%8v  playable resolution: 3/3 layers (full quality)\n",
		time.Since(start).Round(time.Millisecond))

	got, err := viewer.Content()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		log.Fatal("decoded content mismatch")
	}
	fmt.Printf("\nbase layer after %v, full quality after %v — the base arrived %.1fx sooner\n",
		layerAt[0].Round(time.Millisecond), layerAt[len(layerAt)-1].Round(time.Millisecond),
		float64(layerAt[len(layerAt)-1])/float64(layerAt[0]))
}
