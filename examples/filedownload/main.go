// Filedownload: asynchronous distribution with heterogeneous peers — the
// paper's §5 "some users could have DSL connections and others T1". DSL
// peers join with degree 2 (two unit streams), T1 peers with degree 6.
// Peers arrive in waves; early finishers keep seeding (their threads keep
// forwarding) while later arrivals catch up via redirect bursts and the
// round-robin source.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncast"
)

func main() {
	content := make([]byte, 192<<10)
	rand.New(rand.NewSource(13)).Read(content)

	cfg := ncast.DefaultConfig()
	cfg.K, cfg.D = 24, 2 // default degree = DSL class
	session, err := ncast.NewSession(content, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(2))

	type peer struct {
		client *ncast.Client
		class  string
		joined time.Time
	}
	var peers []peer

	// Three waves of arrivals, 10 peers each, 30% T1.
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < 10; i++ {
			class, degree := "dsl", 2
			if rng.Float64() < 0.3 {
				class, degree = "t1", 6
			}
			c, err := session.AddClient(ctx, ncast.WithDegree(degree))
			if err != nil {
				log.Fatal(err)
			}
			peers = append(peers, peer{client: c, class: class, joined: time.Now()})
		}
		fmt.Printf("wave %d joined (population %d)\n", wave+1, session.NumNodes())
		time.Sleep(50 * time.Millisecond)
	}

	classTime := map[string][]time.Duration{}
	for i, p := range peers {
		if err := p.client.Wait(ctx); err != nil {
			log.Fatalf("peer %d (%s) stalled at %.1f%%: %v",
				i, p.class, 100*p.client.Progress(), err)
		}
		got, err := p.client.Content()
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			log.Fatalf("peer %d corrupted download", i)
		}
		classTime[p.class] = append(classTime[p.class], time.Since(p.joined))
	}

	for _, class := range []string{"dsl", "t1"} {
		times := classTime[class]
		if len(times) == 0 {
			continue
		}
		var total time.Duration
		for _, d := range times {
			total += d
		}
		fmt.Printf("%-3s peers: %2d completed, mean download time %v\n",
			class, len(times), (total / time.Duration(len(times))).Round(time.Millisecond))
	}
	fmt.Printf("all %d peers decoded %d bytes\n", len(peers), len(content))
}
