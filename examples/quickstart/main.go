// Quickstart: broadcast a blob from one server to 64 peers through the
// network-coded curtain overlay — the paper's opening scenario ("a server
// has content ... that millions of clients would like to receive") at
// laptop scale. The server has bandwidth for only k = 16 unit streams, yet
// every peer downloads at full rate because peers re-mix and forward.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ncast"
)

func main() {
	// The "movie": 256 KiB of random bytes.
	content := make([]byte, 256<<10)
	rand.New(rand.NewSource(2005)).Read(content)

	cfg := ncast.DefaultConfig() // k=16, d=4, GF(256), 16x1KiB generations
	session, err := ncast.NewSession(content, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	start := time.Now()
	clients := make([]*ncast.Client, 0, 64)
	for i := 0; i < 64; i++ {
		c, err := session.AddClient(ctx)
		if err != nil {
			log.Fatalf("join %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	fmt.Printf("64 peers joined; server carries only %d unit streams for %d peers\n",
		cfg.K, len(clients))

	for i, c := range clients {
		if err := c.Wait(ctx); err != nil {
			log.Fatalf("peer %d stalled at %.1f%%: %v", i, 100*c.Progress(), err)
		}
		got, err := c.Content()
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			log.Fatalf("peer %d decoded different bytes", i)
		}
	}
	elapsed := time.Since(start)

	var totalRecv, totalInnov int
	for _, c := range clients {
		r, in := c.Stats()
		totalRecv += r
		totalInnov += in
	}
	fmt.Printf("all 64 peers decoded %d bytes in %v\n", len(content), elapsed.Round(time.Millisecond))
	fmt.Printf("packets received %d, innovative %d (%.1f%% useful)\n",
		totalRecv, totalInnov, 100*float64(totalInnov)/float64(totalRecv))
}
