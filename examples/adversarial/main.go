// Adversarial: the §5 failure attack, measured on the analysis plane. A
// coalition of adversaries joins back-to-back (they cannot pick WHERE the
// server puts them, but they can pick WHEN they arrive) and later fails
// simultaneously. Under the plain §3 append rule their rows form a
// contiguous band of the matrix M that can sever every thread below it;
// with the §5 random-insert rule the same burst is scattered and does no
// more damage than random failures — which Theorem 4 already bounds.
//
// This example drives internal measurements through the same overlay code
// the data plane uses; see examples/livestream for the packet-level view.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ncast/internal/core"
	"ncast/internal/sim"
)

func main() {
	const (
		k, d       = 16, 2
		population = 400
		coalition  = 20 // 5% of peers are adversaries
		trials     = 12
	)

	type outcome struct {
		name string
		mode core.InsertMode
	}
	fmt.Printf("population %d, coalition %d (%.0f%%), k=%d d=%d, %d trials\n\n",
		population, coalition, 100.0*coalition/population, k, d, trials)

	for _, oc := range []outcome{
		{"append (§3, vulnerable)", core.InsertAppend},
		{"random-insert (§5, defended)", core.InsertRandom},
	} {
		var lossSum, fullSum float64
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(trial + 1)))
			c, err := core.New(k, d, rng, core.WithInsertMode(oc.mode))
			if err != nil {
				log.Fatal(err)
			}
			// Honest early adopters, then the coalition arrives
			// back-to-back, then more honest peers.
			ids := make([]core.NodeID, 0, population)
			for i := 0; i < population/2; i++ {
				ids = append(ids, c.Join())
			}
			var plotters []core.NodeID
			for i := 0; i < coalition; i++ {
				plotters = append(plotters, c.Join())
			}
			for i := 0; i < population/2-coalition; i++ {
				ids = append(ids, c.Join())
			}
			// "cut-off the power from their hardware at the same time"
			sim.FailSet(c, plotters)

			stats := sim.MeasureConnectivity(c.Snapshot())
			lossSum += stats.MeanLossFrac
			fullSum += float64(stats.FullCount) / float64(stats.Working)
		}
		fmt.Printf("%-30s mean bandwidth loss %.4f, peers at full rate %.1f%%\n",
			oc.name, lossSum/trials, 100*fullSum/trials)
	}

	// Reference: the same number of failures, but iid — the §4 model.
	var lossSum, fullSum float64
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 100)))
		c, err := core.New(k, d, rng)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < population; i++ {
			c.Join()
		}
		sim.FailIID(c, float64(coalition)/population, rng)
		stats := sim.MeasureConnectivity(c.Snapshot())
		lossSum += stats.MeanLossFrac
		fullSum += float64(stats.FullCount) / float64(stats.Working)
	}
	fmt.Printf("%-30s mean bandwidth loss %.4f, peers at full rate %.1f%%\n",
		"iid failures (§4 reference)", lossSum/trials, 100*fullSum/trials)
	fmt.Println("\n§5's claim: the defended line should match the iid reference.")
}
